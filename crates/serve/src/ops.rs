//! The ops plane: a std-only threaded HTTP/1.1 server exposing the
//! process's telemetry to scrapers and operators.
//!
//! | Endpoint         | Body                                     | Status |
//! |------------------|------------------------------------------|--------|
//! | `/metrics`       | Prometheus text exposition of `cobs`     | 200    |
//! | `/metrics.json`  | the same snapshot as JSON                | 200    |
//! | `/healthz`       | liveness + SLO alerts + drift + recorder | 200, 503 on page |
//! | `/readyz`        | replica-pool readiness + queue headroom  | 200 / 503 |
//! | `/debug/traces`  | flight-recorder dump (ring + exemplars)  | 200    |
//!
//! `/healthz` is *liveness with severity*: the process answers 200 while
//! it can serve, and degrades to 503 only when a page-level alert is
//! firing (SLO burn or drift-forced ROMS fallback) — load balancers keep
//! sending traffic through a warning, and shed it on a page. `/readyz` is
//! *readiness*: 503 until the replica pool is up and while the admission
//! queue is at capacity, so rolling deploys and autoscalers gate on it.
//!
//! Implementation notes: `TcpListener` + thread-per-connection (scrape
//! traffic is one connection per interval — a thread pool would be
//! ceremony), `Connection: close` semantics, no new dependencies.
//! Shutdown sets a flag and self-connects to unblock `accept`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cobs::slo::{AlertState, SloEngine};

use crate::governor::DriftGovernor;

/// What the ops endpoints report on. Build one by hand for a bespoke
/// deployment, or let [`crate::ForecastServer::ops_state`] wire it to a
/// live server.
#[derive(Clone)]
pub struct OpsState {
    /// Flipped once the serving pool is up (readiness, not liveness).
    pub ready: Arc<AtomicBool>,
    /// Live admission-queue depth.
    pub queue_depth: Arc<dyn Fn() -> usize + Send + Sync>,
    /// Queue capacity; `/readyz` reports not-ready at or above it.
    pub queue_capacity: usize,
    /// Burn-rate alerts surfaced on `/healthz`.
    pub slo: Option<Arc<SloEngine>>,
    /// Physics-drift governor surfaced on `/healthz`.
    pub governor: Option<Arc<DriftGovernor>>,
}

impl Default for OpsState {
    fn default() -> Self {
        Self {
            ready: Arc::new(AtomicBool::new(false)),
            queue_depth: Arc::new(|| 0),
            queue_capacity: usize::MAX,
            slo: None,
            governor: None,
        }
    }
}

impl OpsState {
    /// Attach a drift governor (its route and alert join `/healthz`).
    pub fn with_governor(mut self, g: Arc<DriftGovernor>) -> Self {
        self.governor = Some(g);
        self
    }

    /// The most severe alert across the SLO engine and the drift
    /// governor.
    fn worst_alert(&self) -> AlertState {
        let slo = self
            .slo
            .as_ref()
            .map_or(AlertState::Ok, |e| e.worst_state());
        let drift = self
            .governor
            .as_ref()
            .map_or(AlertState::Ok, |g| g.alert_state());
        slo.max(drift)
    }

    fn health_json(&self) -> (AlertState, String) {
        let worst = self.worst_alert();
        let slos = self
            .slo
            .as_ref()
            .map_or_else(|| "[]".into(), |e| e.health_json());
        let drift = self
            .governor
            .as_ref()
            .map_or_else(|| "null".into(), |g| g.status_json());
        let rec = cobs::recorder::global();
        let freeze_reason = match rec.freeze_reason() {
            Some(r) => format!("\"{}\"", r.replace('\\', "\\\\").replace('"', "\\\"")),
            None => "null".into(),
        };
        let body = format!(
            "{{\"status\": \"{}\", \"slos\": {slos}, \"drift\": {drift}, \
             \"recorder\": {{\"enabled\": {}, \"records\": {}, \"frozen\": {}, \
             \"freeze_reason\": {freeze_reason}}}}}",
            worst.as_str(),
            rec.enabled(),
            rec.len(),
            rec.is_frozen(),
        );
        (worst, body)
    }

    fn ready_json(&self) -> (bool, String) {
        let up = self.ready.load(Ordering::Acquire);
        let depth = (self.queue_depth)();
        let ready = up && depth < self.queue_capacity;
        let reason = if !up {
            "\"replica pool not ready\""
        } else if depth >= self.queue_capacity {
            "\"admission queue at capacity\""
        } else {
            "null"
        };
        let capacity = if self.queue_capacity == usize::MAX {
            "null".into()
        } else {
            self.queue_capacity.to_string()
        };
        let body = format!(
            "{{\"ready\": {ready}, \"queue_depth\": {depth}, \
             \"queue_capacity\": {capacity}, \"reason\": {reason}}}"
        );
        (ready, body)
    }
}

/// A running ops-plane HTTP server. Dropping it shuts it down.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Bind and start serving. `addr` is usually `"127.0.0.1:0"` (tests)
    /// or `"0.0.0.0:9464"` (a scrape port).
    pub fn bind<A: ToSocketAddrs>(addr: A, state: OpsState) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let state = Arc::new(state);
            std::thread::Builder::new()
                .name("serve-ops-http".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let state = Arc::clone(&state);
                        // Thread-per-connection: scrape cadence is
                        // seconds, not thousands of rps.
                        let _ = std::thread::Builder::new()
                            .name("serve-ops-conn".into())
                            .spawn(move || {
                                let _ = handle_connection(stream, &state);
                            });
                    }
                })?
        };
        cobs::global().describe("ops.server.starts", "Ops-plane HTTP servers started");
        cobs::global().describe("ops.http.requests", "Ops-plane HTTP requests handled");
        cobs::counter!("ops.server.starts").inc();
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Idempotent; also runs
    /// on drop. In-flight responses finish on their own threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            // Unblock `accept` with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = h.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Most requests are a scrape every few seconds; a stuck client must not
/// pin its thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Request head cap — these endpoints take no bodies.
const MAX_HEAD: usize = 8 * 1024;

fn handle_connection(mut stream: TcpStream, state: &OpsState) -> io::Result<()> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = read_head(&mut stream)?;
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    // Strip any query string: scrapers love cache-busters.
    let path = path.split('?').next().unwrap_or("");
    let (status, content_type, body) = route(method, path, state);
    cobs::counter!("ops.http.requests").inc();
    write_response(&mut stream, status, content_type, &body)
}

fn route(method: &str, path: &str, state: &OpsState) -> (u16, &'static str, String) {
    if method != "GET" {
        return (405, "text/plain", "method not allowed\n".into());
    }
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4",
            cobs::global().snapshot().to_prometheus(),
        ),
        "/metrics.json" => (200, "application/json", cobs::global().snapshot().to_json()),
        "/healthz" => {
            let (worst, body) = state.health_json();
            let status = if worst == AlertState::Page { 503 } else { 200 };
            (status, "application/json", body)
        }
        "/readyz" => {
            let (ready, body) = state.ready_json();
            (if ready { 200 } else { 503 }, "application/json", body)
        }
        "/debug/traces" => (
            200,
            "application/json",
            cobs::recorder::global().dump_json(),
        ),
        _ => (404, "text/plain", "not found\n".into()),
    }
}

/// Read until the end of the request head (`\r\n\r\n`), bounded.
fn read_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_HEAD {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
