//! Replica worker pool.
//!
//! Model parameters are `Rc`-shared and therefore thread-local, so each
//! worker thread rebuilds its own `TrainedSurrogate` from the shared
//! [`SurrogateSpec`] (cheap: parameter tensors are `Arc` clones) and pins
//! one compute backend for its lifetime. Batches arrive over a bounded
//! channel; each batch runs as **one** `predict_batch` forward pass, and
//! every request in it gets its response through its own channel.

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use ccore::SurrogateSpec;
use cocean::Snapshot;
use crossbeam::channel::{bounded, Receiver, Sender as BatchSender};
use ctensor::backend::BackendChoice;
use parking_lot::Mutex;

use crate::cache::ForecastCache;
use crate::error::ServeError;
use crate::metrics::MetricsRecorder;
use crate::request::CacheKey;

pub(crate) type ResponseTx = Sender<Result<Arc<Vec<Snapshot>>, ServeError>>;

/// A request in flight between admission and its replica. The response
/// channels (with their per-client submit times) live in the
/// [`InflightRegistry`], keyed by the request's cache key, so duplicate
/// submissions can attach as extra waiters.
pub(crate) struct PendingRequest {
    pub window: Vec<Snapshot>,
    pub key: CacheKey,
}

/// A waiter on an in-flight computation: its own submit time (so latency
/// is measured per client, not from the leader's arrival) and its
/// response channel.
pub(crate) struct Waiter {
    pub submitted: Instant,
    pub tx: ResponseTx,
}

/// Single-flight registry: one computation per distinct in-flight
/// request, however many concurrent clients asked for it. Duplicate
/// submissions join the original's waiter list instead of occupying
/// queue and batch slots — under fan-in traffic (many users, one storm)
/// this is where serving throughput detaches from request count.
#[derive(Default)]
pub(crate) struct InflightRegistry {
    map: Mutex<HashMap<CacheKey, Vec<Waiter>>>,
}

pub(crate) enum Admission {
    /// First request for this key: the caller must enqueue a computation.
    Leader,
    /// Joined an existing in-flight computation; nothing to enqueue.
    Joined,
}

impl InflightRegistry {
    /// Register a waiter for `key`. `Leader` means the caller owns
    /// enqueueing the computation (and must [`Self::take`] to clean up if
    /// that fails).
    pub fn join_or_lead(&self, key: CacheKey, waiter: Waiter) -> Admission {
        let mut map = self.map.lock();
        match map.get_mut(&key) {
            Some(waiters) => {
                waiters.push(waiter);
                Admission::Joined
            }
            None => {
                map.insert(key, vec![waiter]);
                Admission::Leader
            }
        }
    }

    /// Remove and return every waiter for `key` (completion path, and the
    /// leader's cleanup path when enqueueing fails).
    pub fn take(&self, key: &CacheKey) -> Vec<Waiter> {
        self.map.lock().remove(key).unwrap_or_default()
    }
}

/// Pool of replica worker threads consuming batches from one channel.
pub(crate) struct ReplicaPool {
    tx: Option<BatchSender<Vec<PendingRequest>>>,
    handles: Vec<JoinHandle<()>>,
}

impl ReplicaPool {
    pub fn spawn(
        spec: &SurrogateSpec,
        workers: usize,
        backend: BackendChoice,
        cache: Arc<ForecastCache>,
        inflight: Arc<InflightRegistry>,
        metrics: Arc<MetricsRecorder>,
    ) -> Self {
        assert!(workers >= 1, "need at least one replica");
        // Bounded hand-off: when every worker is busy the dispatcher
        // blocks, pressure backs up into the admission queue, and excess
        // load surfaces as `Overloaded` instead of hidden buffering.
        let (tx, rx) = bounded::<Vec<PendingRequest>>(workers);
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let spec = spec.clone();
            let rx = Arc::clone(&rx);
            let cache = Arc::clone(&cache);
            let inflight = Arc::clone(&inflight);
            let metrics = Arc::clone(&metrics);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-replica-{w}"))
                    .spawn(move || replica_main(spec, backend, &rx, &cache, &inflight, &metrics))
                    .expect("spawn replica worker"),
            );
        }
        Self {
            tx: Some(tx),
            handles,
        }
    }

    /// Hand a batch to the next free replica (blocks when all are busy).
    /// Returns the batch when every worker is gone (shutdown race) so the
    /// caller can fail its requests.
    pub fn dispatch(&self, batch: Vec<PendingRequest>) -> Result<(), Vec<PendingRequest>> {
        match &self.tx {
            Some(tx) => tx.send(batch).map_err(|e| e.0),
            None => Err(batch),
        }
    }

    /// Close the batch channel and join every worker (they drain what is
    /// already queued first).
    pub fn shutdown(&mut self) {
        self.tx = None; // drop the sender → workers see end-of-stream
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicaPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn replica_main(
    spec: SurrogateSpec,
    backend: BackendChoice,
    rx: &Mutex<Receiver<Vec<PendingRequest>>>,
    cache: &ForecastCache,
    inflight: &InflightRegistry,
    metrics: &MetricsRecorder,
) {
    // Pin this replica's compute backend for its whole lifetime; the
    // model's own `Auto` resolution then lands on this choice.
    let _backend = ctensor::backend::scoped(backend.resolve());
    let surrogate = spec.instantiate();
    loop {
        // Take the next batch, releasing the lock before the (long)
        // forward pass so sibling replicas can pick up work.
        let batch = match rx.lock().recv() {
            Ok(b) => b,
            Err(_) => return, // dispatcher gone: shutdown
        };
        if batch.is_empty() {
            continue;
        }
        metrics.record_batch(batch.len());
        let windows: Vec<&[Snapshot]> = batch.iter().map(|p| p.window.as_slice()).collect();
        // A panic in the tensor stack must fail this batch's waiters, not
        // kill the worker (which would hang them forever and blackhole
        // the in-flight keys).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            surrogate.predict_batch(&windows)
        }));
        match outcome {
            Ok(Ok(results)) => {
                for (pending, snaps) in batch.into_iter().zip(results) {
                    let value = Arc::new(snaps);
                    // Cache before releasing the in-flight entry so late
                    // duplicates land on one path or the other — never on
                    // a recompute.
                    cache.insert(pending.key, Arc::clone(&value));
                    // Fan the one computation out to every coalesced
                    // waiter; a dropped handle just means nobody waits.
                    for w in inflight.take(&pending.key) {
                        metrics.record_completion(w.submitted.elapsed());
                        let _ = w.tx.send(Ok(Arc::clone(&value)));
                    }
                }
            }
            Ok(Err(e)) => {
                // Validation happens at admission, so this is unexpected —
                // but it must fail the batch's requests, not the worker.
                fail_batch(&batch, inflight, metrics, &ServeError::Forecast(e));
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                fail_batch(
                    &batch,
                    inflight,
                    metrics,
                    &ServeError::Internal(format!("replica panicked: {msg}")),
                );
            }
        }
    }
}

fn fail_batch(
    batch: &[PendingRequest],
    inflight: &InflightRegistry,
    metrics: &MetricsRecorder,
    err: &ServeError,
) {
    for pending in batch {
        for w in inflight.take(&pending.key) {
            metrics.record_failure();
            let _ = w.tx.send(Err(err.clone()));
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}
