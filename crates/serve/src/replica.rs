//! Replica worker pool.
//!
//! Model parameters are `Rc`-shared and therefore thread-local, so each
//! worker thread rebuilds its own `TrainedSurrogate` from the shared
//! [`SurrogateSpec`] (cheap: deferred-init skeleton + `Arc`-clone tensor
//! loads) and pins one compute backend for its lifetime. Each batch runs
//! as **one** `predict_batch` forward pass, and every request in it gets
//! its response through its own channel.
//!
//! Scaling structure (the v1 pool collapsed to 0.21× sequential at four
//! workers; each piece below removes one cause):
//!
//! - **Readiness barrier** — [`ReplicaPool::spawn`] blocks until every
//!   worker has built its model, so spin-up cost can never overlap (and
//!   contend with) the serving window.
//! - **Idle-token dispatch** — workers announce themselves on a shared
//!   idle channel and each owns a private batch channel. The dispatcher
//!   pairs one idle token with one batch; no worker ever holds a lock
//!   while blocking on work (the v1 `Mutex<Receiver>` pickup convoy).
//! - **Compute gate** — concurrent forward passes are capped at
//!   `min(workers, available_parallelism)`. Oversubscribing physical
//!   cores with tensor forwards just thrashes caches; excess workers
//!   still pipeline admission/response work while gated.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver as StdReceiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use ccore::SurrogateSpec;
use cocean::Snapshot;
use ctensor::backend::BackendChoice;
use ctensor::quant::Precision;
use parking_lot::Mutex;

use crate::cache::ForecastCache;
use crate::error::ServeError;
use crate::metrics::MetricsRecorder;
use crate::request::CacheKey;

pub(crate) type ResponseTx = Sender<Result<Arc<Vec<Snapshot>>, ServeError>>;

/// A request in flight between admission and its replica. The response
/// channels (with their per-client submit times) live in the
/// [`InflightRegistry`], keyed by the request's cache key, so duplicate
/// submissions can attach as extra waiters.
pub(crate) struct PendingRequest {
    pub window: Vec<Snapshot>,
    pub key: CacheKey,
    /// When the leader entered the micro-batcher (queue-wait span).
    pub enqueued: Instant,
    /// The leading submitter's trace, carried across the batcher so the
    /// replica can attribute queue wait and batch compute to it.
    pub trace: Option<cobs::TraceHandle>,
}

/// A waiter on an in-flight computation: its own submit time (so latency
/// is measured per client, not from the leader's arrival) and its
/// response channel.
pub(crate) struct Waiter {
    pub submitted: Instant,
    pub tx: ResponseTx,
    /// This client's trace; its root span closes when the response is
    /// sent (any terminal path).
    pub trace: Option<cobs::TraceHandle>,
}

impl Waiter {
    /// Close this client's trace root (the request reached a terminal
    /// state). Idempotent, no-op without a trace.
    pub fn close_trace(&self) {
        if let Some(t) = &self.trace {
            t.close();
        }
    }
}

/// Single-flight registry: one computation per distinct in-flight
/// request, however many concurrent clients asked for it. Duplicate
/// submissions join the original's waiter list instead of occupying
/// queue and batch slots — under fan-in traffic (many users, one storm)
/// this is where serving throughput detaches from request count.
#[derive(Default)]
pub(crate) struct InflightRegistry {
    map: Mutex<HashMap<CacheKey, Vec<Waiter>>>,
}

pub(crate) enum Admission {
    /// First request for this key: the caller must enqueue a computation.
    Leader,
    /// Joined an existing in-flight computation; nothing to enqueue.
    Joined,
}

impl InflightRegistry {
    /// Register a waiter for `key`. `Leader` means the caller owns
    /// enqueueing the computation (and must [`Self::take`] to clean up if
    /// that fails).
    pub fn join_or_lead(&self, key: CacheKey, waiter: Waiter) -> Admission {
        let mut map = self.map.lock();
        match map.get_mut(&key) {
            Some(waiters) => {
                waiters.push(waiter);
                Admission::Joined
            }
            None => {
                map.insert(key, vec![waiter]);
                Admission::Leader
            }
        }
    }

    /// Remove and return every waiter for `key` (completion path, and the
    /// leader's cleanup path when enqueueing fails).
    pub fn take(&self, key: &CacheKey) -> Vec<Waiter> {
        self.map.lock().remove(key).unwrap_or_default()
    }
}

/// Counting semaphore over `std::sync::{Mutex, Condvar}` bounding how many
/// forward passes run at once (the parking_lot shim has no Condvar).
pub(crate) struct ComputeGate {
    slots: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
}

impl ComputeGate {
    fn new(permits: usize) -> Self {
        Self {
            slots: std::sync::Mutex::new(permits.max(1)),
            cv: std::sync::Condvar::new(),
        }
    }

    fn acquire(&self) -> ComputePermit<'_> {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        while *slots == 0 {
            slots = self.cv.wait(slots).unwrap_or_else(|e| e.into_inner());
        }
        *slots -= 1;
        ComputePermit { gate: self }
    }
}

pub(crate) struct ComputePermit<'a> {
    gate: &'a ComputeGate,
}

impl Drop for ComputePermit<'_> {
    fn drop(&mut self) {
        let mut slots = self.gate.slots.lock().unwrap_or_else(|e| e.into_inner());
        *slots += 1;
        self.gate.cv.notify_one();
    }
}

struct WorkerHandle {
    /// Rendezvous hand-off for this worker's next batch.
    batch_tx: Option<SyncSender<Vec<PendingRequest>>>,
    join: Option<JoinHandle<()>>,
}

/// Pool of replica worker threads fed by idle-token dispatch.
pub(crate) struct ReplicaPool {
    workers: Vec<WorkerHandle>,
    /// Workers push their index here when ready for a batch.
    idle_rx: StdReceiver<usize>,
}

impl ReplicaPool {
    /// Spawn `precisions.len()` workers; worker `w` rebuilds the model at
    /// `precisions[w]`, so one pool can serve a heterogeneous-precision
    /// mix (e.g. int8 bulk workers plus one f32 reference worker).
    pub fn spawn(
        spec: &SurrogateSpec,
        precisions: &[Precision],
        backend: BackendChoice,
        cache: Arc<ForecastCache>,
        inflight: Arc<InflightRegistry>,
        metrics: Arc<MetricsRecorder>,
    ) -> Self {
        let workers = precisions.len();
        assert!(workers >= 1, "need at least one replica");
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let gate = Arc::new(ComputeGate::new(workers.min(cores)));
        let (idle_tx, idle_rx) = std::sync::mpsc::channel::<usize>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let mut handles = Vec::with_capacity(workers);
        for (w, &precision) in precisions.iter().enumerate() {
            // Rendezvous (capacity 0): a send completes only when the
            // worker is receiving, so an idle token always means "this
            // worker is actually waiting", and backpressure flows to the
            // dispatcher the moment no token is available.
            let (batch_tx, batch_rx) = sync_channel::<Vec<PendingRequest>>(0);
            let spec = spec.clone().with_precision(precision);
            let cache = Arc::clone(&cache);
            let inflight = Arc::clone(&inflight);
            let metrics = Arc::clone(&metrics);
            let gate = Arc::clone(&gate);
            let idle_tx = idle_tx.clone();
            let ready_tx = ready_tx.clone();
            let join = std::thread::Builder::new()
                .name(format!("serve-replica-{w}"))
                .spawn(move || {
                    replica_main(
                        w, spec, backend, &batch_rx, &idle_tx, &ready_tx, &gate, &cache, &inflight,
                        &metrics,
                    )
                })
                .expect("spawn replica worker");
            handles.push(WorkerHandle {
                batch_tx: Some(batch_tx),
                join: Some(join),
            });
        }
        drop(ready_tx);
        // Readiness barrier: block until every worker has built its model,
        // so replica spin-up can never bleed into the serving window.
        for _ in 0..workers {
            ready_rx
                .recv()
                .expect("replica worker died during model construction");
        }
        Self {
            workers: handles,
            idle_rx,
        }
    }

    /// Block until some replica is idle; `None` when every worker has
    /// exited (shutdown race). Token-first dispatch: the dispatcher
    /// acquires capacity *before* flushing the batcher, so a queued
    /// request never waits out a batching deadline while a worker idles.
    pub fn acquire_idle(&self) -> Option<usize> {
        self.idle_rx.recv().ok()
    }

    /// Hand `batch` to worker `w` (previously acquired via
    /// [`Self::acquire_idle`]). If that worker died between announcing
    /// idle and receiving, falls back to the next idle token. Returns the
    /// batch when every worker is gone so the caller can fail its
    /// requests.
    pub fn send_to(
        &self,
        w: usize,
        mut batch: Vec<PendingRequest>,
    ) -> Result<(), Vec<PendingRequest>> {
        let mut next = Some(w);
        loop {
            let w = match next.take() {
                Some(w) => w,
                None => match self.idle_rx.recv() {
                    Ok(w) => w,
                    Err(_) => return Err(batch), // every worker exited
                },
            };
            match &self.workers[w].batch_tx {
                Some(tx) => match tx.send(batch) {
                    Ok(()) => return Ok(()),
                    // This worker died between announcing idle and
                    // receiving; try the next token.
                    Err(e) => batch = e.0,
                },
                None => return Err(batch),
            }
        }
    }

    /// Close every batch channel and join the workers (a worker finishes
    /// its in-hand batch first).
    pub fn shutdown(&mut self) {
        for wh in &mut self.workers {
            wh.batch_tx = None; // drop sender → worker sees end-of-stream
        }
        for wh in &mut self.workers {
            if let Some(h) = wh.join.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for ReplicaPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn replica_main(
    index: usize,
    spec: SurrogateSpec,
    backend: BackendChoice,
    batch_rx: &StdReceiver<Vec<PendingRequest>>,
    idle_tx: &Sender<usize>,
    ready_tx: &Sender<()>,
    gate: &ComputeGate,
    cache: &ForecastCache,
    inflight: &InflightRegistry,
    metrics: &MetricsRecorder,
) {
    // Pin this replica's compute backend for its whole lifetime; the
    // model's own `Auto` resolution then lands on this choice.
    let _backend = ctensor::backend::scoped(backend.resolve());
    let surrogate = spec.instantiate();
    let _ = ready_tx.send(());
    loop {
        // Announce idle, then wait on the private batch channel.
        if idle_tx.send(index).is_err() {
            return; // pool gone
        }
        let batch = match batch_rx.recv() {
            Ok(b) => b,
            Err(_) => return, // dispatcher gone: shutdown
        };
        if batch.is_empty() {
            continue;
        }
        metrics.record_batch(batch.len());
        // Queue wait per member: enqueue → replica pickup. Recorded both
        // as a registry histogram and, for traced requests, an
        // explicit-bounds span under the request's root.
        let picked_up = Instant::now();
        for p in &batch {
            let waited = picked_up.saturating_duration_since(p.enqueued);
            cobs::histogram!("serve.queue_wait_seconds").record_duration(waited);
            if let Some(t) = &p.trace {
                t.record("queue.wait", None, p.enqueued, picked_up);
            }
        }
        let windows: Vec<&[Snapshot]> = batch.iter().map(|p| p.window.as_slice()).collect();
        // Gate the forward so tensor compute never oversubscribes the
        // physical cores, then guard against panics in the tensor stack:
        // a panic must fail this batch's waiters, not kill the worker
        // (which would hang them forever and blackhole in-flight keys).
        let permit = gate.acquire();
        // The first traced member's trace becomes this thread's active
        // trace for the forward, so profiled backend kernels nest under
        // its replica.predict_batch span; other traced members get the
        // same interval recorded as a shared-batch span below.
        let lead_trace = batch.iter().find_map(|p| p.trace.clone());
        let fwd_start = Instant::now();
        let outcome = {
            let _enter = lead_trace.as_ref().map(|t| cobs::trace::enter(t, t.root()));
            let _span = cobs::span!("replica.predict_batch");
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                surrogate.predict_batch(&windows)
            }))
        };
        let fwd_end = Instant::now();
        drop(permit);
        cobs::histogram!("serve.replica_compute_seconds")
            .record_duration(fwd_end.saturating_duration_since(fwd_start));
        for p in &batch {
            if let Some(t) = &p.trace {
                if lead_trace.as_ref().map(cobs::TraceHandle::id) != Some(t.id()) {
                    t.record("replica.predict_batch.shared", None, fwd_start, fwd_end);
                }
            }
        }
        match outcome {
            Ok(Ok(results)) => {
                for (pending, snaps) in batch.into_iter().zip(results) {
                    let value = Arc::new(snaps);
                    // Cache before releasing the in-flight entry so late
                    // duplicates land on one path or the other — never on
                    // a recompute.
                    cache.insert(pending.key, Arc::clone(&value));
                    // Fan the one computation out to every coalesced
                    // waiter; a dropped handle just means nobody waits.
                    // Waiters are in arrival order, so index 0 is the
                    // leader and the rest coalesced onto its computation.
                    for (i, w) in inflight.take(&pending.key).into_iter().enumerate() {
                        // Close before recording/sending: the flight
                        // recorder renders the span tree at record time,
                        // and once the client's wait() returns its trace
                        // must already be complete.
                        w.close_trace();
                        metrics.record_completion(
                            w.submitted.elapsed(),
                            false,
                            i > 0,
                            w.trace.as_ref(),
                        );
                        let _ = w.tx.send(Ok(Arc::clone(&value)));
                    }
                }
            }
            Ok(Err(e)) => {
                // Validation happens at admission, so this is unexpected —
                // but it must fail the batch's requests, not the worker.
                fail_batch(&batch, inflight, metrics, &ServeError::Forecast(e));
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                fail_batch(
                    &batch,
                    inflight,
                    metrics,
                    &ServeError::Internal(format!("replica panicked: {msg}")),
                );
            }
        }
    }
}

fn fail_batch(
    batch: &[PendingRequest],
    inflight: &InflightRegistry,
    metrics: &MetricsRecorder,
    err: &ServeError,
) {
    for pending in batch {
        for w in inflight.take(&pending.key) {
            w.close_trace();
            metrics.record_failure(w.submitted.elapsed(), w.trace.as_ref());
            let _ = w.tx.send(Err(err.clone()));
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}
