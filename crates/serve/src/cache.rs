//! LRU forecast cache with hit/miss accounting.
//!
//! Keyed by `(scenario, input hash, horizon)`; values are completed
//! forecast trajectories stored as IEEE binary16 payloads — half the
//! resident bytes of the f32 snapshots — and widened back to f32 on
//! every hit. A hit therefore matches the original computation to f16
//! rounding (relative error ≤ 2⁻¹¹ in the normal range, which covers
//! every physical ζ/u/v/w magnitude this model produces), not
//! bit-for-bit; exact sharing of the f32 buffers still happens one
//! layer up, where single-flight coalescing joins concurrent duplicates
//! onto the in-flight computation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cocean::Snapshot;
use ctensor::f16::F16;
use parking_lot::Mutex;

use crate::request::CacheKey;

/// One snapshot with its four field arrays compressed to binary16.
/// Mesh shape and the (already tiny) time stamp stay exact.
struct HalfSnapshot {
    time: f64,
    nz: usize,
    ny: usize,
    nx: usize,
    zeta: Vec<F16>,
    u: Vec<F16>,
    v: Vec<F16>,
    w: Vec<F16>,
}

fn compress(values: &[f32]) -> Vec<F16> {
    values.iter().map(|&v| F16::from_f32(v)).collect()
}

fn decompress(values: &[F16]) -> Vec<f32> {
    values.iter().map(|v| v.to_f32()).collect()
}

impl HalfSnapshot {
    fn encode(s: &Snapshot) -> Self {
        Self {
            time: s.time,
            nz: s.nz,
            ny: s.ny,
            nx: s.nx,
            zeta: compress(&s.zeta),
            u: compress(&s.u),
            v: compress(&s.v),
            w: compress(&s.w),
        }
    }

    fn decode(&self) -> Snapshot {
        Snapshot {
            time: self.time,
            nz: self.nz,
            ny: self.ny,
            nx: self.nx,
            zeta: decompress(&self.zeta),
            u: decompress(&self.u),
            v: decompress(&self.v),
            w: decompress(&self.w),
        }
    }

    /// Field-payload bytes (excluding the struct header).
    fn nbytes(&self) -> usize {
        (self.zeta.len() + self.u.len() + self.v.len() + self.w.len()) * std::mem::size_of::<F16>()
    }
}

struct Entry {
    payload: Vec<HalfSnapshot>,
    /// Logical clock of the last touch (insert or hit).
    last_used: u64,
}

impl Entry {
    fn decode(&self) -> Arc<Vec<Snapshot>> {
        Arc::new(self.payload.iter().map(HalfSnapshot::decode).collect())
    }
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// Bounded LRU cache of completed forecasts (f16-compressed at rest).
pub struct ForecastCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ForecastCache {
    /// A cache holding at most `capacity` forecasts (`0` disables
    /// caching entirely: every lookup is a miss and inserts are no-ops).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a forecast, updating recency and hit/miss counters. A hit
    /// widens the stored f16 payload back to f32 (fresh allocation).
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<Snapshot>>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            cobs::counter!("serve.cache.misses").inc();
            return None;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                cobs::counter!("serve.cache.hits").inc();
                Some(e.decode())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                cobs::counter!("serve.cache.misses").inc();
                None
            }
        }
    }

    /// Like [`Self::get`], but without touching the hit/miss counters —
    /// for internal double-checks that should not skew observability
    /// (each client lookup still counts exactly once).
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<Vec<Snapshot>>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|e| {
            e.last_used = clock;
            e.decode()
        })
    }

    /// Insert a completed forecast (compressed to f16 at rest), evicting
    /// the least-recently-used entry when full.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<Snapshot>>) {
        if self.capacity == 0 {
            return;
        }
        let payload: Vec<HalfSnapshot> = value.iter().map(HalfSnapshot::encode).collect();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // Evict the stalest entry. O(n) scan — capacities are small
            // (hundreds) and eviction is off the request fast path.
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                payload,
                last_used: clock,
            },
        );
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident field-payload bytes across all entries (the f16 arrays;
    /// an f32-at-rest cache would hold exactly twice this).
    pub fn payload_bytes(&self) -> usize {
        self.inner
            .lock()
            .map
            .values()
            .map(|e| e.payload.iter().map(HalfSnapshot::nbytes).sum::<usize>())
            .sum()
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Hit rate over all lookups so far (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let (h, m, _) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        CacheKey {
            scenario_id: 0,
            ic_hash: i as u128,
            horizon: 4,
        }
    }

    fn val(t: f64) -> Arc<Vec<Snapshot>> {
        Arc::new(vec![Snapshot {
            time: t,
            nz: 1,
            ny: 1,
            nx: 1,
            zeta: vec![t as f32],
            u: vec![0.0],
            v: vec![0.0],
            w: vec![0.0],
        }])
    }

    #[test]
    fn hit_decodes_fresh_f16_payload() {
        let c = ForecastCache::new(4);
        let v = val(1.0);
        c.insert(key(1), Arc::clone(&v));
        let got = c.get(&key(1)).unwrap();
        assert!(
            !Arc::ptr_eq(&got, &v),
            "hits decode the compressed payload, not the inserted Arc"
        );
        assert_eq!(got[0].zeta, v[0].zeta, "1.0 is exact in f16");
        assert_eq!(c.stats(), (1, 0, 0));
    }

    #[test]
    fn f16_roundtrip_error_bounded_at_physical_magnitudes() {
        // Realistic field magnitudes: ζ in metres (±3), u/v in m/s (±2),
        // w tiny (±1e-3). All sit in f16's normal range, so the
        // round-trip error is bounded by 2⁻¹¹ relative.
        let n = 1024usize;
        let snap = Snapshot {
            time: 3600.0,
            nz: 1,
            ny: 32,
            nx: 32,
            zeta: (0..n).map(|i| (i as f32 * 0.173).sin() * 3.0).collect(),
            u: (0..n).map(|i| (i as f32 * 0.091).cos() * 2.0).collect(),
            v: (0..n).map(|i| (i as f32 * 0.057).sin() * 1.5).collect(),
            w: (0..n).map(|i| (i as f32 * 0.211).cos() * 1e-3).collect(),
        };
        let c = ForecastCache::new(1);
        c.insert(key(1), Arc::new(vec![snap.clone()]));
        let got = c.get(&key(1)).unwrap();
        let fields = [
            (&snap.zeta, &got[0].zeta),
            (&snap.u, &got[0].u),
            (&snap.v, &got[0].v),
            (&snap.w, &got[0].w),
        ];
        for (orig, back) in fields {
            for (a, b) in orig.iter().zip(back) {
                assert!(
                    (a - b).abs() <= a.abs() / 2048.0 + 6.2e-5,
                    "f16 round-trip out of bound: {a} vs {b}"
                );
            }
        }
        assert_eq!(got[0].time, snap.time, "time stays exact");
        assert_eq!((got[0].ny, got[0].nx), (32, 32), "mesh shape stays exact");
    }

    #[test]
    fn payload_is_half_of_f32() {
        let c = ForecastCache::new(4);
        let v = val(1.0);
        let f32_bytes: usize = v
            .iter()
            .map(|s| (s.zeta.len() + s.u.len() + s.v.len() + s.w.len()) * 4)
            .sum();
        c.insert(key(1), v);
        assert_eq!(c.payload_bytes() * 2, f32_bytes);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = ForecastCache::new(2);
        c.insert(key(1), val(1.0));
        c.insert(key(2), val(2.0));
        assert!(c.get(&key(1)).is_some()); // touch 1 → 2 is now stalest
        c.insert(key(3), val(3.0));
        assert!(c.get(&key(1)).is_some(), "recently used survives");
        assert!(c.get(&key(2)).is_none(), "stalest entry evicted");
        assert!(c.get(&key(3)).is_some());
        let (_, _, ev) = c.stats();
        assert_eq!(ev, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ForecastCache::new(0);
        c.insert(key(1), val(1.0));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hit_rate_counts() {
        let c = ForecastCache::new(2);
        c.insert(key(1), val(1.0));
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(9)).is_none());
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
