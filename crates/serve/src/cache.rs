//! LRU forecast cache with hit/miss accounting.
//!
//! Keyed by `(scenario, input hash, horizon)`; values are the completed
//! forecast trajectories, shared via `Arc` so a hit clones a pointer, not
//! megabytes of snapshots. Repeated identical requests therefore return
//! bit-identical snapshots — the cached value *is* the first computation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cocean::Snapshot;
use parking_lot::Mutex;

use crate::request::CacheKey;

struct Entry {
    value: Arc<Vec<Snapshot>>,
    /// Logical clock of the last touch (insert or hit).
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
}

/// Bounded LRU cache of completed forecasts.
pub struct ForecastCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ForecastCache {
    /// A cache holding at most `capacity` forecasts (`0` disables
    /// caching entirely: every lookup is a miss and inserts are no-ops).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a forecast, updating recency and hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<Snapshot>>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`Self::get`], but without touching the hit/miss counters —
    /// for internal double-checks that should not skew observability
    /// (each client lookup still counts exactly once).
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<Vec<Snapshot>>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.value)
        })
    }

    /// Insert a completed forecast, evicting the least-recently-used
    /// entry when full.
    pub fn insert(&self, key: CacheKey, value: Arc<Vec<Snapshot>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // Evict the stalest entry. O(n) scan — capacities are small
            // (hundreds) and eviction is off the request fast path.
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value,
                last_used: clock,
            },
        );
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Hit rate over all lookups so far (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let (h, m, _) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        CacheKey {
            scenario_id: 0,
            ic_hash: i as u128,
            horizon: 4,
        }
    }

    fn val(t: f64) -> Arc<Vec<Snapshot>> {
        Arc::new(vec![Snapshot {
            time: t,
            nz: 1,
            ny: 1,
            nx: 1,
            zeta: vec![t as f32],
            u: vec![0.0],
            v: vec![0.0],
            w: vec![0.0],
        }])
    }

    #[test]
    fn hit_returns_same_allocation() {
        let c = ForecastCache::new(4);
        let v = val(1.0);
        c.insert(key(1), Arc::clone(&v));
        let got = c.get(&key(1)).unwrap();
        assert!(Arc::ptr_eq(&got, &v), "hits must share the stored value");
        assert_eq!(c.stats(), (1, 0, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = ForecastCache::new(2);
        c.insert(key(1), val(1.0));
        c.insert(key(2), val(2.0));
        assert!(c.get(&key(1)).is_some()); // touch 1 → 2 is now stalest
        c.insert(key(3), val(3.0));
        assert!(c.get(&key(1)).is_some(), "recently used survives");
        assert!(c.get(&key(2)).is_none(), "stalest entry evicted");
        assert!(c.get(&key(3)).is_some());
        let (_, _, ev) = c.stats();
        assert_eq!(ev, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ForecastCache::new(0);
        c.insert(key(1), val(1.0));
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hit_rate_counts() {
        let c = ForecastCache::new(2);
        c.insert(key(1), val(1.0));
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(9)).is_none());
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }
}
