//! Typed serving errors — backpressure and validation failures are part
//! of the API, never panics.

use std::fmt;

use ccore::ForecastError;

/// Why a forecast request was not (or could not be) served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the pending queue is at
    /// capacity. Callers should back off and retry — the alternative is
    /// unbounded queue growth and collapsing tail latency.
    Overloaded { depth: usize, capacity: usize },
    /// The server is shutting down (or already shut down).
    Shutdown,
    /// The request cannot be served by the deployed model (wrong horizon,
    /// wrong mesh, malformed window).
    BadRequest(String),
    /// The forecast itself failed inside a replica.
    Forecast(ForecastError),
    /// A replica hit an unexpected internal failure (e.g. a panic in the
    /// tensor stack); the batch is failed, the worker survives.
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(
                    f,
                    "server overloaded: {depth} pending >= capacity {capacity}"
                )
            }
            ServeError::Shutdown => write!(f, "server is shut down"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Forecast(e) => write!(f, "forecast failed: {e}"),
            ServeError::Internal(msg) => write!(f, "internal serving failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ForecastError> for ServeError {
    fn from(e: ForecastError) -> Self {
        ServeError::Forecast(e)
    }
}
