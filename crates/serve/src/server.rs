//! The forecast server: admission → cache → micro-batcher → replica pool.
//!
//! Request lifecycle:
//!
//! ```text
//! submit ──▶ validate ──▶ cache probe ──hit──▶ respond (f16 round-trip)
//!                             │miss
//!                             ▼
//!                    bounded queue (admission control, Overloaded)
//!                             ▼
//!                    micro-batcher (work-conserving: idle workers drain
//!                    immediately; max_batch caps the flush size)
//!                             ▼
//!                    replica pool (one predict_batch per batch)
//!                             ▼
//!                cache insert + per-request response channel
//! ```

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ccore::SurrogateSpec;
use cocean::Snapshot;
use ctensor::backend::BackendChoice;
use ctensor::quant::Precision;

use crate::batcher::{BatcherConfig, MicroBatcher};
use crate::cache::ForecastCache;
use crate::error::ServeError;
use crate::metrics::{MetricsRecorder, ServeMetrics};
use crate::replica::{Admission, InflightRegistry, PendingRequest, ReplicaPool, Waiter};
use crate::request::ForecastRequest;

/// Server deployment knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Replica workers, each owning a rebuilt surrogate.
    pub workers: usize,
    /// Micro-batch flush size.
    pub max_batch: usize,
    /// Micro-batch flush deadline for the oldest pending request.
    pub max_wait: Duration,
    /// Admission bound on pending (queued, unbatched) requests.
    pub queue_capacity: usize,
    /// Forecast cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Compute backend every replica pins.
    pub backend: BackendChoice,
    /// When set, requests whose `scenario_id` differs are rejected as
    /// `BadRequest` (misrouted traffic) instead of being silently
    /// answered by this deployment's model. `None` accepts any id and
    /// treats it purely as a cache namespace.
    pub scenario_id: Option<u64>,
    /// Numeric precision every replica serves at (unless overridden
    /// per-worker below). Reduced tiers quantize the model at load time
    /// and stay within the documented ζ parity gates
    /// (`ccore::ZETA_TOL_INT8` / `ccore::ZETA_TOL_F16`).
    pub precision: Precision,
    /// Per-worker precision override for heterogeneous pools (e.g. int8
    /// bulk workers plus an f32 reference worker). Length must equal
    /// `workers`; `None` gives every worker `precision`.
    pub worker_precisions: Option<Vec<Precision>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 16,
            max_wait: Duration::from_millis(5),
            queue_capacity: 256,
            cache_capacity: 128,
            backend: BackendChoice::default(),
            scenario_id: None,
            precision: Precision::F32,
            worker_precisions: None,
        }
    }
}

/// Waitable response to a submitted request.
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<Arc<Vec<Snapshot>>, ServeError>>,
    from_cache: bool,
    coalesced: bool,
    trace_id: Option<cobs::TraceId>,
}

impl ResponseHandle {
    /// The request's trace id when tracing is enabled
    /// (`cobs::trace::set_enabled` / `COASTAL_TRACE=1`); resolve it to a
    /// span tree with `cobs::trace::lookup`.
    pub fn trace_id(&self) -> Option<cobs::TraceId> {
        self.trace_id
    }

    /// True when the response was served from the forecast cache (it is
    /// then the first computation of this request widened back from the
    /// cache's f16-at-rest payload — equal to within f16 rounding).
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// True when this request joined an identical in-flight computation
    /// (single-flight coalescing) instead of occupying its own batch slot.
    pub fn coalesced(&self) -> bool {
        self.coalesced
    }

    /// Block until the forecast is ready, sharing the (possibly cached)
    /// trajectory.
    pub fn wait_shared(self) -> Result<Arc<Vec<Snapshot>>, ServeError> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::Shutdown),
        }
    }

    /// Block until the forecast is ready and take an owned copy.
    pub fn wait(self) -> Result<Vec<Snapshot>, ServeError> {
        self.wait_shared().map(|arc| (*arc).clone())
    }
}

/// Concurrent forecast-serving frontend over one deployed surrogate.
pub struct ForecastServer {
    t_out: usize,
    mesh: (usize, usize, usize),
    scenario_id: Option<u64>,
    queue_capacity: usize,
    batcher: Arc<MicroBatcher<PendingRequest>>,
    cache: Arc<ForecastCache>,
    inflight: Arc<InflightRegistry>,
    metrics: Arc<MetricsRecorder>,
    /// Dispatcher thread; it owns the replica pool and joins the workers
    /// on its way out.
    dispatcher: Option<JoinHandle<()>>,
}

impl ForecastServer {
    /// Deploy `spec` behind a micro-batched replica pool.
    pub fn new(spec: SurrogateSpec, cfg: ServeConfig) -> Self {
        let cache = Arc::new(ForecastCache::new(cfg.cache_capacity));
        let inflight = Arc::new(InflightRegistry::default());
        let metrics = Arc::new(MetricsRecorder::new());
        let batcher = Arc::new(MicroBatcher::new(BatcherConfig {
            max_batch: cfg.max_batch,
            max_wait: cfg.max_wait,
            capacity: cfg.queue_capacity,
        }));

        // Replicas resolve `Auto` against their own pinned scope, so let
        // each model defer to the worker's scoped choice.
        let mut spec = spec;
        spec.swin.backend = BackendChoice::Auto;
        let t_out = spec.t_out();
        let mesh = spec.mesh();
        let precisions: Vec<Precision> = match &cfg.worker_precisions {
            Some(v) => {
                assert_eq!(
                    v.len(),
                    cfg.workers,
                    "worker_precisions length must equal workers"
                );
                v.clone()
            }
            None => vec![cfg.precision; cfg.workers],
        };
        let mut pool = ReplicaPool::spawn(
            &spec,
            &precisions,
            cfg.backend,
            Arc::clone(&cache),
            Arc::clone(&inflight),
            Arc::clone(&metrics),
        );

        // Dispatcher: drains the micro-batcher into the pool until the
        // queue is closed and empty, then shuts the workers down.
        //
        // Token-first, work-conserving: acquire an idle worker *before*
        // flushing the batcher. With capacity in hand, `next_ready`
        // releases whatever is pending immediately (no `max_wait` stall —
        // the source of the old workers=2 distinct-request regression);
        // while every worker is busy we aren't flushing, so requests
        // accumulate into full `max_batch` batches on their own.
        let dispatcher = {
            let batcher = Arc::clone(&batcher);
            let inflight = Arc::clone(&inflight);
            let metrics = Arc::clone(&metrics);
            let fail = move |batch: Vec<PendingRequest>,
                             inflight: &InflightRegistry,
                             metrics: &MetricsRecorder| {
                // Workers are gone; fail the batch cleanly — and account
                // for it, so completed + failed + rejected still covers
                // every admitted request during the shutdown race.
                for p in batch {
                    for w in inflight.take(&p.key) {
                        w.close_trace();
                        metrics.record_failure(w.submitted.elapsed(), w.trace.as_ref());
                        let _ = w.tx.send(Err(ServeError::Shutdown));
                    }
                }
            };
            std::thread::Builder::new()
                .name("serve-dispatcher".into())
                .spawn(move || {
                    loop {
                        let Some(w) = pool.acquire_idle() else {
                            // Every worker exited: drain and fail what's
                            // still queued.
                            while let Some(batch) = batcher.next_ready() {
                                fail(batch, &inflight, &metrics);
                            }
                            break;
                        };
                        let Some(batch) = batcher.next_ready() else {
                            break; // closed and drained
                        };
                        if let Err(orphaned) = pool.send_to(w, batch) {
                            fail(orphaned, &inflight, &metrics);
                        }
                    }
                    pool.shutdown();
                })
                .expect("spawn dispatcher")
        };

        Self {
            t_out,
            mesh,
            scenario_id: cfg.scenario_id,
            queue_capacity: cfg.queue_capacity,
            batcher,
            cache,
            inflight,
            metrics,
            dispatcher: Some(dispatcher),
        }
    }

    /// Submit a request. Returns immediately with a waitable handle, a
    /// cache hit, or a typed rejection (`BadRequest` / `Overloaded` /
    /// `Shutdown`).
    pub fn submit(&self, req: ForecastRequest) -> Result<ResponseHandle, ServeError> {
        let submitted = Instant::now();
        // Mint a per-request trace when tracing is on; it follows the
        // request through the batcher into its replica, and its root span
        // closes on whichever terminal path the request takes.
        let trace = cobs::trace::enabled().then(|| cobs::trace::start("forecast"));
        let trace_id = trace.as_ref().map(cobs::TraceHandle::id);
        let _enter = trace.as_ref().map(|t| cobs::trace::enter(t, t.root()));

        let validated = {
            let _s = cobs::span!("submit.validate");
            self.validate(&req)
        };
        if let Err(e) = validated {
            if let Some(t) = &trace {
                t.close();
            }
            return Err(e);
        }
        // Counted only past validation: every submitted request ends in
        // exactly one of completed / failed / rejected.
        self.metrics.record_submitted();
        let key = req.cache_key();

        let (tx, rx) = mpsc::channel();
        let probe = {
            let _s = cobs::span!("submit.cache_probe");
            self.cache.get(&key)
        };
        if let Some(hit) = probe {
            // Close before recording: the flight recorder renders the
            // span tree at record time.
            if let Some(t) = &trace {
                t.close();
            }
            self.metrics
                .record_completion(submitted.elapsed(), true, false, trace.as_ref());
            let _ = tx.send(Ok(hit));
            return Ok(ResponseHandle {
                rx,
                from_cache: true,
                coalesced: false,
                trace_id,
            });
        }

        // Single-flight: identical concurrent requests share one
        // computation. Only the leader enqueues; joiners wait on the
        // same in-flight entry.
        let waiter = Waiter {
            submitted,
            tx,
            trace: trace.clone(),
        };
        match self.inflight.join_or_lead(key, waiter) {
            Admission::Joined => {
                let _s = cobs::span!("submit.coalesce");
                self.metrics.record_coalesced();
                // A high-priority duplicate lends its urgency to the
                // queued leader: the shared computation must not wait
                // behind the normal backlog.
                if req.priority == crate::request::Priority::High {
                    self.batcher.promote_where(|p| p.key == key);
                }
                return Ok(ResponseHandle {
                    rx,
                    from_cache: false,
                    coalesced: true,
                    trace_id,
                });
            }
            Admission::Leader => {
                // Double-check the cache: the previous leader for this key
                // may have completed (insert, then registry release)
                // between our probe above and winning leadership here —
                // without this, a late duplicate would recompute a
                // forecast that is already cached. `peek` keeps the
                // hit/miss counters at one count per client lookup.
                if let Some(hit) = self.cache.peek(&key) {
                    let value = Ok(hit);
                    for (i, w) in self.inflight.take(&key).into_iter().enumerate() {
                        w.close_trace();
                        self.metrics.record_completion(
                            w.submitted.elapsed(),
                            true,
                            i > 0, // waiters past the leader coalesced onto it
                            w.trace.as_ref(),
                        );
                        let _ = w.tx.send(value.clone());
                    }
                    return Ok(ResponseHandle {
                        rx,
                        from_cache: true,
                        coalesced: false,
                        trace_id,
                    });
                }
            }
        }

        let pending = PendingRequest {
            window: req.window,
            key,
            enqueued: Instant::now(),
            trace: trace.clone(),
        };
        let pushed = {
            let _s = cobs::span!("submit.enqueue");
            self.batcher.push(pending, req.priority)
        };
        match pushed {
            Ok(()) => {
                cobs::gauge!("serve.queue_depth").set(self.batcher.depth() as f64);
                Ok(ResponseHandle {
                    rx,
                    from_cache: false,
                    coalesced: false,
                    trace_id,
                })
            }
            Err(e) => {
                // Release the in-flight entry (ourselves plus any waiter
                // that joined in the race window), propagating the error.
                // Terminal accounting is per waiter — each was counted
                // submitted, so each needs exactly one outcome for
                // `completed + failed + rejected == submitted` to hold.
                let overloaded = matches!(e, ServeError::Overloaded { .. });
                for waiter in self.inflight.take(&key) {
                    waiter.close_trace();
                    if overloaded {
                        self.metrics
                            .record_rejection(waiter.submitted.elapsed(), waiter.trace.as_ref());
                    } else {
                        self.metrics
                            .record_failure(waiter.submitted.elapsed(), waiter.trace.as_ref());
                    }
                    let _ = waiter.tx.send(Err(e.clone()));
                }
                Err(e)
            }
        }
    }

    /// Submit a whole ensemble of member requests through the regular
    /// micro-batcher path, returning one handle per member in member
    /// order.
    ///
    /// Ensemble members are ordinary traffic to the serving stack: they
    /// stack into `max_batch`-sized forwards, coalesce with identical
    /// in-flight requests, hit the forecast cache, and warm it for later
    /// clients.
    ///
    /// **Validation is atomic**: every member is checked up front, so a
    /// malformed member rejects the whole ensemble before anything
    /// enqueues. **Admission is streaming**: members enter the bounded
    /// queue as the replica pool drains it, so ensembles larger than
    /// `queue_capacity` are fine — backpressure only triggers when the
    /// pool genuinely cannot keep up, surfacing as
    /// [`ServeError::Overloaded`] mid-submission. Members admitted before
    /// that point complete normally and warm the cache, which makes a
    /// backed-off retry of the same ensemble cheap: already-computed
    /// members return as cache hits or coalesce onto in-flight leaders
    /// instead of recomputing.
    pub fn submit_ensemble(
        &self,
        members: Vec<ForecastRequest>,
    ) -> Result<Vec<ResponseHandle>, ServeError> {
        if members.is_empty() {
            return Err(ServeError::BadRequest(
                "ensemble submission needs at least one member".into(),
            ));
        }
        for req in &members {
            self.validate(req)?;
        }
        members.into_iter().map(|req| self.submit(req)).collect()
    }

    fn validate(&self, req: &ForecastRequest) -> Result<(), ServeError> {
        if let Some(id) = self.scenario_id {
            if req.scenario_id != id {
                return Err(ServeError::BadRequest(format!(
                    "scenario {} not served by this deployment (serving scenario {id})",
                    req.scenario_id
                )));
            }
        }
        if req.horizon != self.t_out {
            return Err(ServeError::BadRequest(format!(
                "horizon {} not served by this deployment (model t_out = {})",
                req.horizon, self.t_out
            )));
        }
        // Window shape/mesh checks share ccore's single implementation,
        // so admission and replica execution can never disagree on what
        // a valid episode is.
        ccore::validate_episode_window(self.t_out, self.mesh, &req.window)
            .map_err(|e| ServeError::BadRequest(e.to_string()))
    }

    /// Pending (queued, unbatched) requests right now.
    pub fn queue_depth(&self) -> usize {
        self.batcher.depth()
    }

    /// This server's burn-rate SLO engine (fed by every terminal request
    /// outcome; scraped via the ops plane's `/healthz`).
    pub fn slo(&self) -> &Arc<cobs::slo::SloEngine> {
        self.metrics.slo()
    }

    /// Ops-plane state wired to this server: ready (the constructor's
    /// readiness barrier has passed by the time `self` exists), live
    /// queue depth against the admission bound, and the SLO engine.
    /// Attach a drift governor with [`crate::OpsState::with_governor`]
    /// before binding if the deployment runs one.
    pub fn ops_state(&self) -> crate::OpsState {
        let batcher = Arc::clone(&self.batcher);
        crate::OpsState {
            ready: Arc::new(std::sync::atomic::AtomicBool::new(true)),
            queue_depth: Arc::new(move || batcher.depth()),
            queue_capacity: self.queue_capacity,
            slo: Some(Arc::clone(self.metrics.slo())),
            governor: None,
        }
    }

    /// Start the ops-plane HTTP server (`/metrics`, `/metrics.json`,
    /// `/healthz`, `/readyz`, `/debug/traces`) for this deployment.
    /// Returns the running server; drop or `shutdown()` to stop it.
    pub fn serve_ops<A: std::net::ToSocketAddrs>(
        &self,
        addr: A,
    ) -> std::io::Result<crate::OpsServer> {
        crate::OpsServer::bind(addr, self.ops_state())
    }

    /// Snapshot the serving metrics.
    pub fn metrics(&self) -> ServeMetrics {
        let (hits, misses, _) = self.cache.stats();
        self.metrics.snapshot((hits, misses))
    }

    /// Graceful shutdown: stop admitting, drain the queue, join every
    /// thread (the dispatcher joins the replica workers). Idempotent;
    /// also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.batcher.close();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ForecastServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
