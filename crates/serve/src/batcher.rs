//! Dynamic micro-batching queue.
//!
//! Requests accumulate in a bounded two-class (priority) queue; a batch
//! is released as soon as **either** `max_batch` items are pending
//! (size trigger) **or** the oldest pending item has waited `max_wait`
//! (deadline trigger) — the classic dynamic-batching policy of inference
//! servers: large batches under load for throughput, prompt flushes when
//! idle for latency.
//!
//! Admission is bounded: pushes beyond `capacity` fail with
//! [`ServeError::Overloaded`] instead of growing the queue without limit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::request::Priority;

/// Flush policy and admission bound of a [`MicroBatcher`].
#[derive(Clone, Debug)]
pub struct BatcherConfig {
    /// Flush as soon as this many items are pending.
    pub max_batch: usize,
    /// Flush when the oldest pending item has waited this long.
    pub max_wait: Duration,
    /// Admission bound: pushes beyond this many pending items are
    /// rejected with `Overloaded`.
    pub capacity: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_wait: Duration::from_millis(5),
            capacity: 256,
        }
    }
}

struct QueueState<T> {
    high: VecDeque<(Instant, T)>,
    normal: VecDeque<(Instant, T)>,
    closed: bool,
}

impl<T> QueueState<T> {
    fn total(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Arrival time of the oldest pending item.
    fn oldest(&self) -> Option<Instant> {
        match (self.high.front(), self.normal.front()) {
            (Some(&(a, _)), Some(&(b, _))) => Some(a.min(b)),
            (Some(&(a, _)), None) => Some(a),
            (None, Some(&(b, _))) => Some(b),
            (None, None) => None,
        }
    }
}

/// A bounded, priority-aware micro-batching queue.
///
/// Generic over the item type so flush semantics are testable in
/// isolation; the server instantiates it with pending forecast requests.
pub struct MicroBatcher<T> {
    cfg: BatcherConfig,
    state: Mutex<QueueState<T>>,
    cond: Condvar,
}

impl<T> MicroBatcher<T> {
    pub fn new(cfg: BatcherConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        assert!(cfg.capacity >= 1, "capacity must be >= 1");
        Self {
            cfg,
            state: Mutex::new(QueueState {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueue an item, failing fast when the server is saturated or
    /// shutting down.
    pub fn push(&self, item: T, priority: Priority) -> Result<(), ServeError> {
        let mut st = self.lock();
        if st.closed {
            return Err(ServeError::Shutdown);
        }
        let depth = st.total();
        if depth >= self.cfg.capacity {
            return Err(ServeError::Overloaded {
                depth,
                capacity: self.cfg.capacity,
            });
        }
        let entry = (Instant::now(), item);
        match priority {
            Priority::High => st.high.push_back(entry),
            Priority::Normal => st.normal.push_back(entry),
        }
        drop(st);
        self.cond.notify_all();
        Ok(())
    }

    /// Items currently pending.
    pub fn depth(&self) -> usize {
        self.lock().total()
    }

    /// Admission bound (see [`BatcherConfig::capacity`]).
    pub fn capacity(&self) -> usize {
        self.cfg.capacity
    }

    /// Block until a batch is ready and take it (high priority first,
    /// FIFO within each class). Returns `None` once the queue is closed
    /// *and* fully drained — the consumer's shutdown signal.
    pub fn next_batch(&self) -> Option<Vec<T>> {
        let mut st = self.lock();
        loop {
            if st.total() == 0 {
                if st.closed {
                    return None;
                }
                st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Flush triggers: batch full, queue closed (drain promptly),
            // or the oldest item's deadline has passed.
            if st.total() >= self.cfg.max_batch || st.closed {
                break;
            }
            let deadline = st.oldest().expect("non-empty queue") + self.cfg.max_wait;
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _) = self
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
        Some(Self::take_locked(&mut st, self.cfg.max_batch))
    }

    /// Work-conserving flush: block only until **anything** is pending,
    /// then take up to `max_batch` immediately — no `max_wait` stall.
    ///
    /// This is the consumer for token-first dispatch: the caller acquires
    /// an idle worker *before* asking for a batch, so whenever compute
    /// capacity is free the queue flushes instantly (a lone request never
    /// idles against its deadline while a worker sits empty — the
    /// `workers=2` distinct-request regression). While every worker is
    /// busy the caller isn't asking, and requests pile into full
    /// `max_batch` flushes on their own. Returns `None` once closed and
    /// drained.
    pub fn next_ready(&self) -> Option<Vec<T>> {
        let mut st = self.lock();
        while st.total() == 0 {
            if st.closed {
                return None;
            }
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        Some(Self::take_locked(&mut st, self.cfg.max_batch))
    }

    fn take_locked(st: &mut QueueState<T>, max_batch: usize) -> Vec<T> {
        let n = st.total().min(max_batch);
        let mut batch = Vec::with_capacity(n);
        while batch.len() < n {
            let (_, item) = match st.high.pop_front() {
                Some(e) => e,
                None => st.normal.pop_front().expect("counted items present"),
            };
            batch.push(item);
        }
        batch
    }

    /// Move every queued `Normal`-class item matching `pred` into the
    /// `High` class, keeping its arrival time (so its flush deadline is
    /// unchanged). Used when a high-priority duplicate coalesces onto a
    /// normal-priority leader: the shared computation inherits the most
    /// urgent waiter's class. Returns how many items were promoted.
    pub fn promote_where(&self, pred: impl Fn(&T) -> bool) -> usize {
        let mut st = self.lock();
        let mut promoted = 0;
        let mut rest = VecDeque::with_capacity(st.normal.len());
        let mut moved = Vec::new();
        while let Some((at, item)) = st.normal.pop_front() {
            if pred(&item) {
                moved.push((at, item));
                promoted += 1;
            } else {
                rest.push_back((at, item));
            }
        }
        st.normal = rest;
        if promoted > 0 {
            // Merge by arrival time: both sequences are arrival-ordered,
            // and `oldest()` (the deadline trigger) only inspects queue
            // fronts — appending at the back would silently push a
            // promoted item's flush deadline out by up to `max_wait`.
            let mut merged = VecDeque::with_capacity(st.high.len() + promoted);
            let mut moved = moved.into_iter().peekable();
            while let Some(at_h) = st.high.front().map(|e| e.0) {
                while moved.peek().is_some_and(|&(at_m, _)| at_m <= at_h) {
                    merged.push_back(moved.next().expect("peeked"));
                }
                merged.push_back(st.high.pop_front().expect("fronted"));
            }
            merged.extend(moved);
            st.high = merged;
            // An older arrival may now head the high queue: re-evaluate
            // the consumer's deadline wait.
            drop(st);
            self.cond.notify_all();
        }
        promoted
    }

    /// Stop admitting new items; consumers drain what is pending, then
    /// [`Self::next_batch`] returns `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn batcher(max_batch: usize, max_wait_ms: u64, capacity: usize) -> MicroBatcher<u32> {
        MicroBatcher::new(BatcherConfig {
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
            capacity,
        })
    }

    #[test]
    fn size_trigger_flushes_before_deadline() {
        // Deadline is far away (10 s): a full batch must release
        // immediately on the size trigger.
        let b = batcher(4, 10_000, 64);
        for i in 0..4 {
            b.push(i, Priority::Normal).unwrap();
        }
        let t0 = Instant::now();
        let batch = b.next_batch().unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "size-triggered flush must not wait for the deadline"
        );
    }

    #[test]
    fn deadline_trigger_flushes_partial_batch() {
        // Batch never fills (max 100): the single item must flush once
        // its deadline passes.
        let b = Arc::new(batcher(100, 30, 64));
        b.push(7, Priority::Normal).unwrap();
        let t0 = Instant::now();
        let batch = b.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch, vec![7]);
        assert!(waited >= Duration::from_millis(25), "flushed at {waited:?}");
        assert!(waited < Duration::from_secs(5));
    }

    #[test]
    fn consumer_wakes_on_late_push_completing_batch() {
        let b = Arc::new(batcher(2, 10_000, 64));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.next_batch().unwrap());
        b.push(1, Priority::Normal).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        b.push(2, Priority::Normal).unwrap();
        assert_eq!(h.join().unwrap(), vec![1, 2]);
    }

    #[test]
    fn high_priority_drains_first() {
        let b = batcher(3, 10_000, 64);
        b.push(10, Priority::Normal).unwrap();
        b.push(20, Priority::High).unwrap();
        b.push(11, Priority::Normal).unwrap();
        let batch = b.next_batch().unwrap();
        assert_eq!(batch, vec![20, 10, 11]);
    }

    #[test]
    fn promote_moves_items_to_high_class() {
        let b = batcher(4, 10_000, 64);
        b.push(10, Priority::Normal).unwrap();
        b.push(11, Priority::Normal).unwrap();
        b.push(20, Priority::High).unwrap();
        assert_eq!(b.promote_where(|&v| v == 11), 1);
        assert_eq!(b.promote_where(|&v| v == 99), 0);
        b.push(12, Priority::Normal).unwrap();
        // High class first; within it, arrival order (11 arrived before
        // 20, so promotion slots it ahead — its deadline is older).
        assert_eq!(b.next_batch().unwrap(), vec![11, 20, 10, 12]);
    }

    #[test]
    fn promotion_preserves_oldest_deadline() {
        // A normal item promoted behind a younger high item must still
        // deadline-flush on ITS OWN arrival clock, not the younger one's.
        let b = batcher(100, 80, 64);
        b.push(1, Priority::Normal).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        b.push(2, Priority::High).unwrap();
        b.promote_where(|&v| v == 1);
        let t0 = Instant::now();
        let batch = b.next_batch().unwrap();
        // Flush is driven by item 1's arrival (~40 ms ago): well before
        // item 2's deadline (80 ms from ~now).
        assert!(
            t0.elapsed() < Duration::from_millis(75),
            "promoted item's deadline must not be pushed out: {:?}",
            t0.elapsed()
        );
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn overload_rejected_with_depth() {
        let b = batcher(16, 10_000, 2);
        b.push(1, Priority::Normal).unwrap();
        b.push(2, Priority::High).unwrap();
        match b.push(3, Priority::Normal) {
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let b = batcher(16, 10_000, 64);
        b.push(1, Priority::Normal).unwrap();
        b.push(2, Priority::Normal).unwrap();
        b.close();
        assert!(matches!(
            b.push(3, Priority::Normal),
            Err(ServeError::Shutdown)
        ));
        // Pending items still flush (no deadline wait once closed)…
        assert_eq!(b.next_batch().unwrap(), vec![1, 2]);
        // …then the queue reports end-of-stream.
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn next_ready_flushes_single_item_without_deadline_wait() {
        // Deadline is far away (10 s): the work-conserving consumer must
        // still flush a lone item immediately.
        let b = batcher(16, 10_000, 64);
        b.push(5, Priority::Normal).unwrap();
        let t0 = Instant::now();
        assert_eq!(b.next_ready().unwrap(), vec![5]);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "next_ready must not wait on max_wait"
        );
        b.close();
        assert!(b.next_ready().is_none());
    }

    #[test]
    fn next_ready_respects_max_batch_and_priority() {
        let b = batcher(2, 10_000, 64);
        b.push(10, Priority::Normal).unwrap();
        b.push(20, Priority::High).unwrap();
        b.push(11, Priority::Normal).unwrap();
        assert_eq!(b.next_ready().unwrap(), vec![20, 10]);
        assert_eq!(b.next_ready().unwrap(), vec![11]);
    }

    #[test]
    fn oversized_backlog_splits_into_max_batch_chunks() {
        let b = batcher(3, 10_000, 64);
        for i in 0..7 {
            b.push(i, Priority::Normal).unwrap();
        }
        assert_eq!(b.next_batch().unwrap().len(), 3);
        assert_eq!(b.next_batch().unwrap().len(), 3);
        b.close();
        assert_eq!(b.next_batch().unwrap().len(), 1);
        assert!(b.next_batch().is_none());
    }
}
