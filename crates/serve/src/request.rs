//! Forecast requests and the cache/batch bookkeeping attached to them.

use cocean::Snapshot;

/// Scheduling class of a request. `High` requests are drained into a
/// batch before any `Normal` ones (FIFO within each class) — e.g. an
/// operational storm-surge query jumping ahead of bulk re-analysis.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    High,
    #[default]
    Normal,
}

/// An on-demand forecast request.
///
/// `window[0]` is the initial condition; `window[1..]` carry the future
/// lateral boundary frames (tide tables / parent model in deployment), so
/// `window.len()` must be `horizon + 1` and `horizon` must match the
/// deployed model's episode length.
#[derive(Clone, Debug)]
pub struct ForecastRequest {
    /// Deployment/scenario namespace tag: part of the cache key (so
    /// distinct deployments never share entries) and — when the server
    /// is configured with `ServeConfig::scenario_id` — validated against
    /// the deployment so misrouted traffic is rejected, not silently
    /// answered by the wrong model.
    pub scenario_id: u64,
    /// Initial condition + boundary frames (`horizon + 1` snapshots).
    pub window: Vec<Snapshot>,
    /// Forecast steps requested.
    pub horizon: usize,
    pub priority: Priority,
}

impl ForecastRequest {
    /// Convenience constructor for a normal-priority request.
    pub fn new(scenario_id: u64, window: Vec<Snapshot>, horizon: usize) -> Self {
        Self {
            scenario_id,
            window,
            horizon,
            priority: Priority::Normal,
        }
    }

    /// The cache key of this request: `(scenario, input hash, horizon)`.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey {
            scenario_id: self.scenario_id,
            ic_hash: hash_window(&self.window),
            horizon: self.horizon,
        }
    }
}

/// Key of the forecast cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub scenario_id: u64,
    /// 128-bit FNV-1a digest over every bit of the request window (IC and
    /// boundary frames both determine the forecast, so both are hashed).
    /// Cache hits and single-flight joins are decided by this digest, so
    /// it is deliberately wide: at 128 bits an accidental collision
    /// between distinct windows is beyond astronomically unlikely.
    pub ic_hash: u128,
    pub horizon: usize,
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

#[inline]
fn fnv1a_u64(h: u128, v: u64) -> u128 {
    let mut h = h;
    for byte in v.to_le_bytes() {
        h ^= byte as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_f32s(mut h: u128, vs: &[f32]) -> u128 {
    // 4 bytes per value — this runs once per cell per snapshot on the
    // submit hot path (cache + single-flight key).
    for v in vs {
        for byte in v.to_bits().to_le_bytes() {
            h ^= byte as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Deterministic 128-bit hash of a request window: dims, times, and every
/// field value (bit-exact — two windows differing in one ULP of one cell
/// hash differently).
pub fn hash_window(window: &[Snapshot]) -> u128 {
    let mut h = FNV_OFFSET;
    h = fnv1a_u64(h, window.len() as u64);
    for s in window {
        h = fnv1a_u64(h, s.time.to_bits());
        h = fnv1a_u64(h, s.nz as u64);
        h = fnv1a_u64(h, s.ny as u64);
        h = fnv1a_u64(h, s.nx as u64);
        h = fnv1a_f32s(h, &s.zeta);
        h = fnv1a_f32s(h, &s.u);
        h = fnv1a_f32s(h, &s.v);
        h = fnv1a_f32s(h, &s.w);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(fill: f32) -> Snapshot {
        Snapshot {
            time: 0.0,
            nz: 1,
            ny: 2,
            nx: 2,
            zeta: vec![fill; 4],
            u: vec![0.1; 4],
            v: vec![0.2; 4],
            w: vec![0.0; 4],
        }
    }

    #[test]
    fn identical_windows_hash_identically() {
        let a = vec![snap(1.0), snap(2.0)];
        let b = vec![snap(1.0), snap(2.0)];
        assert_eq!(hash_window(&a), hash_window(&b));
    }

    #[test]
    fn one_ulp_changes_hash() {
        let a = vec![snap(1.0), snap(2.0)];
        let mut b = a.clone();
        b[0].zeta[3] = f32::from_bits(b[0].zeta[3].to_bits() + 1);
        assert_ne!(hash_window(&a), hash_window(&b));
    }

    #[test]
    fn boundary_frames_are_part_of_the_key() {
        // Same IC, different boundary forcing → different forecast →
        // must be a different cache key.
        let a = vec![snap(1.0), snap(2.0)];
        let b = vec![snap(1.0), snap(3.0)];
        assert_ne!(hash_window(&a), hash_window(&b));
    }

    #[test]
    fn key_separates_scenarios_and_horizons() {
        let w = vec![snap(1.0), snap(2.0)];
        let r1 = ForecastRequest::new(1, w.clone(), 1);
        let r2 = ForecastRequest::new(2, w.clone(), 1);
        assert_ne!(r1.cache_key(), r2.cache_key());
        let mut r3 = ForecastRequest::new(1, w, 1);
        r3.horizon = 2;
        assert_ne!(r1.cache_key(), r3.cache_key());
    }
}
