//! Serving telemetry: latency percentiles, throughput, batch-size
//! histogram, cache hit rate.
//!
//! All mutable state lives behind **one** mutex ([`MetricsRecorder`]'s
//! `Inner`), so [`MetricsRecorder::snapshot`] reads every counter and the
//! latency reservoir in a single consistent pass — `completed` can never
//! disagree with the latency window or the batch histogram mid-flush,
//! and the reconcile invariant `completed + failed + rejected ==
//! submitted` holds on every snapshot once writers have quiesced.
//!
//! Every recording also mirrors into the process-global `cobs` metrics
//! registry (`serve.requests.*`, `serve.latency_seconds`,
//! `serve.batch_size`), so serving counters appear in the same JSON /
//! Prometheus dump as trainer, ensemble, and kernel telemetry.
//!
//! The terminal recording methods are additionally the ops plane's feed
//! point: every completion/failure/rejection flows into the global
//! [flight recorder](cobs::recorder) and this server's
//! [SLO engine](cobs::slo) (both on by default), so `/debug/traces`,
//! `/healthz` and the burn-rate gauges describe real traffic with no
//! extra instrumentation at call sites.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cobs::metrics::Reservoir;
use cobs::recorder::Outcome;
use cobs::slo::SloEngine;
use parking_lot::Mutex;

/// Latency samples kept for percentile estimation. Bounded so a
/// long-lived server's memory (and the sort in [`MetricsRecorder::snapshot`])
/// stays O(1) in request count: once full, the ring overwrites the
/// oldest sample, so percentiles describe the most recent window.
const LATENCY_RESERVOIR: usize = 65_536;

struct Inner {
    /// End-to-end request latencies (submit → response), milliseconds —
    /// the most recent [`LATENCY_RESERVOIR`] samples (shared
    /// [`cobs::metrics::Reservoir`] ring).
    latencies_ms: Reservoir,
    /// Executed batch sizes → count.
    batch_sizes: BTreeMap<usize, u64>,
    submitted: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    coalesced: u64,
}

/// Shared recorder the server and its workers write into.
pub struct MetricsRecorder {
    started: Instant,
    inner: Mutex<Inner>,
    /// Burn-rate SLOs fed by the terminal paths below (the serving
    /// defaults: availability plus p99 latency), scraped via `/healthz`.
    slo: Arc<SloEngine>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    pub fn new() -> Self {
        // Help text for every serving series this recorder feeds, so the
        // `/metrics` exposition carries `# HELP` lines in any process
        // that builds a server — not only ones that also happen to
        // construct a governor or evaluate an SLO.
        let reg = cobs::global();
        reg.describe(
            "serve.requests.submitted",
            "Forecast requests admitted past validation",
        );
        reg.describe(
            "serve.requests.completed",
            "Forecast requests answered successfully (cache hits included)",
        );
        reg.describe(
            "serve.requests.rejected",
            "Forecast requests shed at admission (queue at capacity)",
        );
        reg.describe(
            "serve.requests.failed",
            "Forecast requests that reached a replica and failed",
        );
        reg.describe(
            "serve.requests.coalesced",
            "Forecast requests coalesced onto an identical in-flight computation",
        );
        reg.describe("serve.cache.hits", "Forecast cache hits");
        reg.describe("serve.cache.misses", "Forecast cache misses");
        reg.describe(
            "serve.latency_seconds",
            "End-to-end forecast latency, submit to response",
        );
        reg.describe("serve.batch_size", "Executed model batch sizes");
        reg.describe(
            "serve.queue_wait_seconds",
            "Time requests spend queued before a replica picks them up",
        );
        reg.describe(
            "serve.replica_compute_seconds",
            "Model forward time per executed batch",
        );
        reg.describe("serve.queue_depth", "Current admission queue depth");
        Self {
            started: Instant::now(),
            inner: Mutex::new(Inner {
                latencies_ms: Reservoir::new(LATENCY_RESERVOIR),
                batch_sizes: BTreeMap::new(),
                submitted: 0,
                completed: 0,
                rejected: 0,
                failed: 0,
                coalesced: 0,
            }),
            slo: Arc::new(SloEngine::standard()),
        }
    }

    /// This server's SLO engine (surfaced on the ops plane's `/healthz`).
    pub fn slo(&self) -> &Arc<SloEngine> {
        &self.slo
    }

    /// Feed the ops plane: the global flight recorder plus the SLO
    /// engine. One call per terminal outcome, from the record_* methods.
    fn feed_ops(
        &self,
        outcome: Outcome,
        latency: Duration,
        from_cache: bool,
        coalesced: bool,
        trace: Option<&cobs::TraceHandle>,
    ) {
        let secs = latency.as_secs_f64();
        cobs::recorder::global().record("forecast", outcome, secs, from_cache, coalesced, trace);
        self.slo.record_request(secs, outcome == Outcome::Ok);
    }

    /// Record a request admitted past validation. Every submitted request
    /// ends in exactly one of completed / failed / rejected.
    pub fn record_submitted(&self) {
        self.inner.lock().submitted += 1;
        cobs::counter!("serve.requests.submitted").inc();
    }

    /// Record one completed request (cache hits included: they are real
    /// responses with real latencies). `from_cache`/`coalesced`/`trace`
    /// flow into the flight recorder's [`cobs::recorder::RequestRecord`].
    pub fn record_completion(
        &self,
        latency: Duration,
        from_cache: bool,
        coalesced: bool,
        trace: Option<&cobs::TraceHandle>,
    ) {
        let ms = latency.as_secs_f64() * 1e3;
        {
            let mut inner = self.inner.lock();
            inner.completed += 1;
            inner.latencies_ms.push(ms);
        }
        cobs::counter!("serve.requests.completed").inc();
        cobs::histogram!("serve.latency_seconds").record_duration(latency);
        self.feed_ops(Outcome::Ok, latency, from_cache, coalesced, trace);
    }

    /// Record one executed model batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        *self.inner.lock().batch_sizes.entry(size).or_insert(0) += 1;
        cobs::histogram!("serve.batch_size").record(size as f64);
    }

    /// Record an admission rejection (`Overloaded`). `latency` is
    /// submit → rejection (the client-observed wait for the error).
    pub fn record_rejection(&self, latency: Duration, trace: Option<&cobs::TraceHandle>) {
        self.inner.lock().rejected += 1;
        cobs::counter!("serve.requests.rejected").inc();
        self.feed_ops(Outcome::Rejected, latency, false, false, trace);
    }

    /// Record a request that reached a replica but failed.
    pub fn record_failure(&self, latency: Duration, trace: Option<&cobs::TraceHandle>) {
        self.inner.lock().failed += 1;
        cobs::counter!("serve.requests.failed").inc();
        self.feed_ops(Outcome::Failed, latency, false, false, trace);
    }

    /// Record a request coalesced onto an identical in-flight computation.
    pub fn record_coalesced(&self) {
        self.inner.lock().coalesced += 1;
        cobs::counter!("serve.requests.coalesced").inc();
    }

    /// Snapshot the counters into an immutable [`ServeMetrics`] — one
    /// lock acquisition, so every field describes the same instant.
    /// `cache_stats` is `(hits, misses)` from the forecast cache.
    pub fn snapshot(&self, cache_stats: (u64, u64)) -> ServeMetrics {
        let (mut lat, batch_histogram, submitted, completed, rejected, failed, coalesced) = {
            let inner = self.inner.lock();
            (
                inner.latencies_ms.samples().to_vec(),
                inner.batch_sizes.iter().map(|(&k, &v)| (k, v)).collect(),
                inner.submitted,
                inner.completed,
                inner.rejected,
                inner.failed,
                inner.coalesced,
            )
        };
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let elapsed = self.started.elapsed().as_secs_f64();
        let (hits, misses) = cache_stats;
        ServeMetrics {
            submitted,
            completed,
            rejected,
            failed,
            coalesced,
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            p50_ms: percentile(&lat, 0.50),
            p95_ms: percentile(&lat, 0.95),
            p99_ms: percentile(&lat, 0.99),
            mean_ms: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<f64>() / lat.len() as f64
            },
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            batch_histogram,
        }
    }
}

/// Linear-interpolated percentile over a **sorted** sample (0.0 when
/// empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Immutable metrics snapshot.
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Requests admitted past validation (cache hits included). Once
    /// in-flight work drains, `completed + failed + rejected == submitted`.
    pub submitted: u64,
    /// Requests answered (computed or cache-served).
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that reached a replica but errored.
    pub failed: u64,
    /// Requests that joined an identical in-flight computation
    /// (single-flight coalescing) instead of computing again.
    pub coalesced: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    /// Completions per second since the server started.
    pub throughput_rps: f64,
    /// `(batch size, batches executed)` pairs, ascending.
    pub batch_histogram: Vec<(usize, u64)>,
}

impl ServeMetrics {
    /// Mean executed batch size (0.0 when no batches ran).
    pub fn mean_batch_size(&self) -> f64 {
        let (items, batches) = self
            .batch_histogram
            .iter()
            .fold((0u64, 0u64), |(i, b), &(size, count)| {
                (i + size as u64 * count, b + count)
            });
        if batches == 0 {
            0.0
        } else {
            items as f64 / batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&v, 0.50) - 50.5).abs() < 1e-9);
        assert!((percentile(&v, 0.99) - 99.01).abs() < 1e-9);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
    }

    #[test]
    fn reservoir_at_capacity_keeps_percentiles_finite_and_monotone() {
        // Exactly LATENCY_RESERVOIR samples: the ring is full but has not
        // wrapped. Percentiles must be finite, ordered, and describe the
        // whole sample.
        let m = MetricsRecorder::new();
        for i in 0..LATENCY_RESERVOIR {
            m.record_completion(Duration::from_micros(1 + i as u64), false, false, None);
        }
        let s = m.snapshot((0, 0));
        assert_eq!(s.completed, LATENCY_RESERVOIR as u64);
        for p in [s.p50_ms, s.p95_ms, s.p99_ms, s.mean_ms] {
            assert!(p.is_finite() && p > 0.0, "non-finite percentile: {p}");
        }
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
    }

    #[test]
    fn reservoir_wrap_overwrites_oldest_and_stays_monotone() {
        // Overfill by half a reservoir: the ring wraps and the oldest
        // samples fall out. Old samples are all 1000 ms, new ones 1..=N µs
        // — after a full extra reservoir of new samples, the slow cohort
        // is gone entirely, so p99 must reflect the recent window.
        let m = MetricsRecorder::new();
        for _ in 0..LATENCY_RESERVOIR {
            m.record_completion(Duration::from_millis(1000), false, false, None);
        }
        for i in 0..LATENCY_RESERVOIR {
            m.record_completion(Duration::from_micros(1 + i as u64), false, false, None);
        }
        let s = m.snapshot((0, 0));
        assert_eq!(s.completed, 2 * LATENCY_RESERVOIR as u64);
        for p in [s.p50_ms, s.p95_ms, s.p99_ms] {
            assert!(p.is_finite(), "non-finite percentile after wrap: {p}");
        }
        assert!(
            s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms,
            "percentiles out of order after wrap: p50={} p95={} p99={}",
            s.p50_ms,
            s.p95_ms,
            s.p99_ms
        );
        assert!(
            s.p99_ms < 1000.0,
            "wrapped ring must describe the recent window, not evicted \
             samples: p99={}",
            s.p99_ms
        );
    }

    #[test]
    fn reservoir_partial_wrap_mixes_cohorts() {
        // Wrap by a quarter reservoir: 75% old (10 ms) + 25% new (1 ms)
        // coexist; the quantile ordering must survive the mixed, unsorted
        // ring layout.
        let m = MetricsRecorder::new();
        for _ in 0..LATENCY_RESERVOIR {
            m.record_completion(Duration::from_millis(10), false, false, None);
        }
        for _ in 0..LATENCY_RESERVOIR / 4 {
            m.record_completion(Duration::from_millis(1), false, false, None);
        }
        let s = m.snapshot((0, 0));
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        // The new cohort is 25% of the window → p50 sits in the old one.
        assert!((s.p50_ms - 10.0).abs() < 1e-9, "p50={}", s.p50_ms);
        assert!((s.mean_ms - (0.75 * 10.0 + 0.25 * 1.0)).abs() < 1e-6);
    }

    #[test]
    fn snapshot_aggregates() {
        let m = MetricsRecorder::new();
        for i in 1..=10 {
            m.record_submitted();
            m.record_completion(Duration::from_millis(i), false, false, None);
        }
        m.record_batch(4);
        m.record_batch(4);
        m.record_batch(2);
        m.record_submitted();
        m.record_rejection(Duration::ZERO, None);
        let s = m.snapshot((3, 7));
        assert_eq!(s.submitted, 11);
        assert_eq!(s.completed, 10);
        assert_eq!(s.rejected, 1);
        assert!((s.cache_hit_rate - 0.3).abs() < 1e-12);
        assert_eq!(s.batch_histogram, vec![(2, 1), (4, 2)]);
        assert!((s.mean_batch_size() - 10.0 / 3.0).abs() < 1e-9);
        assert!(s.p50_ms >= 5.0 && s.p50_ms <= 6.0);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn totals_reconcile_under_concurrent_recording() {
        // N threads each record a submitted request and finish it on one
        // of the three terminal paths. After joining, every snapshot must
        // satisfy completed + failed + rejected == submitted — the
        // single-lock snapshot can never catch a half-applied update.
        let m = std::sync::Arc::new(MetricsRecorder::new());
        let threads = 8;
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..per_thread {
                        m.record_submitted();
                        match (t + i) % 3 {
                            0 => m.record_completion(
                                Duration::from_micros(i + 1),
                                false,
                                false,
                                None,
                            ),
                            1 => m.record_failure(Duration::ZERO, None),
                            _ => m.record_rejection(Duration::ZERO, None),
                        }
                    }
                });
            }
        });
        let s = m.snapshot((0, 0));
        assert_eq!(s.submitted, threads * per_thread);
        assert_eq!(
            s.completed + s.failed + s.rejected,
            s.submitted,
            "terminal outcomes must cover every submitted request: {s:?}"
        );
    }
}
