//! Serving telemetry: latency percentiles, throughput, batch-size
//! histogram, cache hit rate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Latency samples kept for percentile estimation. Bounded so a
/// long-lived server's memory (and the sort in [`MetricsRecorder::snapshot`])
/// stays O(1) in request count: once full, the ring overwrites the
/// oldest sample, so percentiles describe the most recent window.
const LATENCY_RESERVOIR: usize = 65_536;

struct LatencyRing {
    buf: Vec<f64>,
    /// Next overwrite position once the buffer is full.
    next: usize,
}

impl LatencyRing {
    fn push(&mut self, v: f64) {
        if self.buf.len() < LATENCY_RESERVOIR {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % LATENCY_RESERVOIR;
        }
    }
}

/// Shared recorder the server and its workers write into.
pub struct MetricsRecorder {
    started: Instant,
    /// End-to-end request latencies (submit → response), milliseconds —
    /// the most recent [`LATENCY_RESERVOIR`] samples.
    latencies_ms: Mutex<LatencyRing>,
    /// Executed batch sizes → count.
    batch_sizes: Mutex<BTreeMap<usize, u64>>,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    coalesced: AtomicU64,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            latencies_ms: Mutex::new(LatencyRing {
                buf: Vec::new(),
                next: 0,
            }),
            batch_sizes: Mutex::new(BTreeMap::new()),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Record one completed request (cache hits included: they are real
    /// responses with real latencies).
    pub fn record_completion(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latencies_ms.lock().push(latency.as_secs_f64() * 1e3);
    }

    /// Record one executed model batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        *self.batch_sizes.lock().entry(size).or_insert(0) += 1;
    }

    /// Record an admission rejection (`Overloaded`).
    pub fn record_rejection(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that reached a replica but failed.
    pub fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request coalesced onto an identical in-flight computation.
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters into an immutable [`ServeMetrics`].
    /// `cache_stats` is `(hits, misses)` from the forecast cache.
    pub fn snapshot(&self, cache_stats: (u64, u64)) -> ServeMetrics {
        let mut lat = self.latencies_ms.lock().buf.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        let (hits, misses) = cache_stats;
        ServeMetrics {
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            p50_ms: percentile(&lat, 0.50),
            p95_ms: percentile(&lat, 0.95),
            p99_ms: percentile(&lat, 0.99),
            mean_ms: if lat.is_empty() {
                0.0
            } else {
                lat.iter().sum::<f64>() / lat.len() as f64
            },
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            batch_histogram: self
                .batch_sizes
                .lock()
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
        }
    }
}

/// Linear-interpolated percentile over a **sorted** sample (0.0 when
/// empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Immutable metrics snapshot.
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Requests answered (computed or cache-served).
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that reached a replica but errored.
    pub failed: u64,
    /// Requests that joined an identical in-flight computation
    /// (single-flight coalescing) instead of computing again.
    pub coalesced: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    /// Completions per second since the server started.
    pub throughput_rps: f64,
    /// `(batch size, batches executed)` pairs, ascending.
    pub batch_histogram: Vec<(usize, u64)>,
}

impl ServeMetrics {
    /// Mean executed batch size (0.0 when no batches ran).
    pub fn mean_batch_size(&self) -> f64 {
        let (items, batches) = self
            .batch_histogram
            .iter()
            .fold((0u64, 0u64), |(i, b), &(size, count)| {
                (i + size as u64 * count, b + count)
            });
        if batches == 0 {
            0.0
        } else {
            items as f64 / batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&v, 0.50) - 50.5).abs() < 1e-9);
        assert!((percentile(&v, 0.99) - 99.01).abs() < 1e-9);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
    }

    #[test]
    fn reservoir_at_capacity_keeps_percentiles_finite_and_monotone() {
        // Exactly LATENCY_RESERVOIR samples: the ring is full but has not
        // wrapped. Percentiles must be finite, ordered, and describe the
        // whole sample.
        let m = MetricsRecorder::new();
        for i in 0..LATENCY_RESERVOIR {
            m.record_completion(Duration::from_micros(1 + i as u64));
        }
        let s = m.snapshot((0, 0));
        assert_eq!(s.completed, LATENCY_RESERVOIR as u64);
        for p in [s.p50_ms, s.p95_ms, s.p99_ms, s.mean_ms] {
            assert!(p.is_finite() && p > 0.0, "non-finite percentile: {p}");
        }
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
    }

    #[test]
    fn reservoir_wrap_overwrites_oldest_and_stays_monotone() {
        // Overfill by half a reservoir: the ring wraps and the oldest
        // samples fall out. Old samples are all 1000 ms, new ones 1..=N µs
        // — after a full extra reservoir of new samples, the slow cohort
        // is gone entirely, so p99 must reflect the recent window.
        let m = MetricsRecorder::new();
        for _ in 0..LATENCY_RESERVOIR {
            m.record_completion(Duration::from_millis(1000));
        }
        for i in 0..LATENCY_RESERVOIR {
            m.record_completion(Duration::from_micros(1 + i as u64));
        }
        let s = m.snapshot((0, 0));
        assert_eq!(s.completed, 2 * LATENCY_RESERVOIR as u64);
        for p in [s.p50_ms, s.p95_ms, s.p99_ms] {
            assert!(p.is_finite(), "non-finite percentile after wrap: {p}");
        }
        assert!(
            s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms,
            "percentiles out of order after wrap: p50={} p95={} p99={}",
            s.p50_ms,
            s.p95_ms,
            s.p99_ms
        );
        assert!(
            s.p99_ms < 1000.0,
            "wrapped ring must describe the recent window, not evicted \
             samples: p99={}",
            s.p99_ms
        );
    }

    #[test]
    fn reservoir_partial_wrap_mixes_cohorts() {
        // Wrap by a quarter reservoir: 75% old (10 ms) + 25% new (1 ms)
        // coexist; the quantile ordering must survive the mixed, unsorted
        // ring layout.
        let m = MetricsRecorder::new();
        for _ in 0..LATENCY_RESERVOIR {
            m.record_completion(Duration::from_millis(10));
        }
        for _ in 0..LATENCY_RESERVOIR / 4 {
            m.record_completion(Duration::from_millis(1));
        }
        let s = m.snapshot((0, 0));
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        // The new cohort is 25% of the window → p50 sits in the old one.
        assert!((s.p50_ms - 10.0).abs() < 1e-9, "p50={}", s.p50_ms);
        assert!((s.mean_ms - (0.75 * 10.0 + 0.25 * 1.0)).abs() < 1e-6);
    }

    #[test]
    fn snapshot_aggregates() {
        let m = MetricsRecorder::new();
        for i in 1..=10 {
            m.record_completion(Duration::from_millis(i));
        }
        m.record_batch(4);
        m.record_batch(4);
        m.record_batch(2);
        m.record_rejection();
        let s = m.snapshot((3, 7));
        assert_eq!(s.completed, 10);
        assert_eq!(s.rejected, 1);
        assert!((s.cache_hit_rate - 0.3).abs() < 1e-12);
        assert_eq!(s.batch_histogram, vec![(2, 1), (4, 2)]);
        assert!((s.mean_batch_size() - 10.0 / 3.0).abs() < 1e-9);
        assert!(s.p50_ms >= 5.0 && s.p50_ms <= 6.0);
        assert!(s.throughput_rps > 0.0);
    }
}
