//! # coastal-ensemble
//!
//! Ensemble forecasting engine — the workload the paper's ~6000× surrogate
//! speedup unlocks: instead of one deterministic forecast, run a whole
//! family of forcing scenarios and answer *probabilistic* questions
//! ("what is the chance the surge tops 0.5 m at this cell?").
//!
//! Three layers, in pipeline order:
//!
//! - [`catalog`] — a seed-driven [`PerturbationCatalog`] expands one base
//!   [`ccore::Scenario`] into N member scenarios: tidal constituent
//!   amplitude/phase scaling, weather-anomaly scaling, subtidal
//!   mean-level offsets (river-stage proxy), initial-condition noise, and
//!   a synthetic storm-surge pulse family — placed by grid sweep or
//!   Latin-hypercube sampling.
//! - [`member`] + [`runner`] — member episode windows are *synthesized*
//!   from one shared base simulation (the forcing delta is analytic), and
//!   the [`EnsembleRunner`] forecasts them in chunks stacked through
//!   [`ccore::TrainedSurrogate::predict_batch`], with per-member physics
//!   verification and ROMS fallback ([`run_parallel`] fans chunks across
//!   a thread pool for multicore hosts).
//! - [`stats`] — per-cell mean/spread/quantiles of ζ, u, v;
//!   exceedance-probability maps (`P[ζ_max > threshold]`, the flood-risk
//!   product); member ranking by [`ccore::ErrorTable`]; verification
//!   pass-rate summaries.
//!
//! Everything is deterministic per seed: catalog draws, synthesized
//! windows and statistics are bit-identical across runs, and per-member
//! forecasts are chunk- and thread-count-invariant.
//!
//! ```no_run
//! use ccore::{train_surrogate, Scenario};
//! use censemble::{
//!     synthesize_windows, EnsembleRunner, EnsembleStats, PerturbationCatalog,
//!     PerturbationSpace, RunnerConfig, SamplingStrategy,
//! };
//!
//! let sc = Scenario::small();
//! let grid = sc.grid();
//! let archive = sc.simulate_archive(&grid, 0, 40);
//! let trained = train_surrogate(&sc, &grid, &archive);
//!
//! let catalog = PerturbationCatalog::new(
//!     PerturbationSpace::surge_study(),
//!     SamplingStrategy::LatinHypercube { members: 16 },
//!     42,
//! );
//! let windows =
//!     synthesize_windows(&sc, &grid, &archive[..sc.t_out + 1], 0, &catalog.members()).unwrap();
//! let outcome = EnsembleRunner::new(&grid, &trained, &sc, 0, RunnerConfig::default())
//!     .run(&windows)
//!     .unwrap();
//! let stats = EnsembleStats::compute(&outcome, &EnsembleStats::DEFAULT_PROBS);
//! let flood_risk = stats.exceedance(0.5); // P[peak ζ > 0.5 m] per cell
//! # let _ = flood_risk;
//! ```

pub mod catalog;
pub mod member;
pub mod runner;
pub mod stats;

pub use catalog::{
    MemberPerturbation, ParamRange, PerturbationCatalog, PerturbationSpace, SamplingStrategy,
    SurgeFamily, SurgePulse,
};
pub use member::{synthesize_windows, MemberWindow};
pub use runner::{run_parallel, EnsembleOutcome, EnsembleRunner, MemberOutcome, RunnerConfig};
pub use stats::{rank_members, EnsembleStats, FieldSummary, MemberRank};
