//! The ensemble runner: stacked-batch surrogate inference over all
//! members, per-member physics verification, and per-member ROMS fallback
//! — the hybrid AI+physics workflow lifted from one scenario to N.
//!
//! Members are forecast in chunks of [`RunnerConfig::chunk`] episodes
//! stacked through [`TrainedSurrogate::predict_batch`], so each chunk is
//! **one** forward pass of the Blocked backend instead of `chunk`
//! separate ones. [`run_parallel`] additionally fans chunks out across a
//! thread pool, each worker rebuilding the model from a `Send`
//! [`SurrogateSpec`] — member forecasts are embarrassingly parallel, so
//! ensemble throughput scales with cores where intra-op parallelism
//! cannot.
//!
//! Per-member results are chunk-invariant: stacking a member with
//! different chunkmates does not change its forecast (each batch row's
//! arithmetic is independent), so serial, chunked and parallel runs all
//! produce identical ensembles.

use std::time::Instant;

use ccore::{ForecastError, Scenario, SurrogateSpec, TrainedSurrogate};
use cgrid::Grid;
use cocean::{Roms, Snapshot};
use cphysics::{Verdict, Verifier, VerifierConfig};

use crate::member::MemberWindow;

/// Execution knobs for an ensemble run.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Members stacked per batched forward pass.
    pub chunk: usize,
    /// Physics verification of every member episode (`None` skips it).
    pub verifier: Option<VerifierConfig>,
    /// Re-run failed members with the simulator from the member's own
    /// forcing (the hybrid workflow's "switch back to ROMS" arm, per
    /// member). Requires a verifier.
    pub fallback: bool,
    /// Worker threads for [`run_parallel`] (`0` = all available cores).
    pub threads: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            chunk: 8,
            verifier: Some(VerifierConfig::default()),
            fallback: true,
            threads: 0,
        }
    }
}

/// One member's forecast plus its verification outcome.
#[derive(Clone, Debug)]
pub struct MemberOutcome {
    pub member_id: usize,
    /// The member's forecast trajectory (`t_out` snapshots) — surrogate
    /// output, or simulator output if the member fell back.
    pub forecast: Vec<Snapshot>,
    /// Per-transition verdicts of the *surrogate* episode (empty when
    /// verification is disabled).
    pub verdicts: Vec<Verdict>,
    /// Every verified transition passed.
    pub passed: bool,
    /// The forecast was recomputed by the simulator.
    pub fell_back: bool,
}

/// Aggregate result of an ensemble run.
#[derive(Clone, Debug, Default)]
pub struct EnsembleOutcome {
    /// Per-member outcomes in member order.
    pub members: Vec<MemberOutcome>,
    /// Batched forward passes executed.
    pub batches: usize,
    /// Wall time in stacked surrogate inference (summed across workers).
    pub inference_seconds: f64,
    pub verify_seconds: f64,
    pub fallback_seconds: f64,
}

impl EnsembleOutcome {
    /// Fraction of verified members whose every transition passed.
    pub fn pass_rate(&self) -> f64 {
        if self.members.is_empty() {
            return 1.0;
        }
        self.members.iter().filter(|m| m.passed).count() as f64 / self.members.len() as f64
    }

    /// Members served by the surrogate / recomputed by the simulator.
    pub fn ai_members(&self) -> usize {
        self.members.iter().filter(|m| !m.fell_back).count()
    }

    pub fn fallback_members(&self) -> usize {
        self.members.iter().filter(|m| m.fell_back).count()
    }

    fn merge(mut parts: Vec<EnsembleOutcome>) -> EnsembleOutcome {
        let mut out = EnsembleOutcome::default();
        for p in parts.iter_mut() {
            out.members.append(&mut p.members);
            out.batches += p.batches;
            out.inference_seconds += p.inference_seconds;
            out.verify_seconds += p.verify_seconds;
            out.fallback_seconds += p.fallback_seconds;
        }
        out
    }
}

/// Ensemble executor bound to one grid + trained surrogate.
pub struct EnsembleRunner<'a> {
    pub grid: &'a Grid,
    pub surrogate: &'a TrainedSurrogate,
    /// Base scenario (fallback simulator configuration).
    pub scenario: &'a Scenario,
    /// Forcing year of the base run (selects the fallback config's base
    /// forcing when the scenario carries no override).
    pub year: u32,
    pub cfg: RunnerConfig,
}

impl<'a> EnsembleRunner<'a> {
    pub fn new(
        grid: &'a Grid,
        surrogate: &'a TrainedSurrogate,
        scenario: &'a Scenario,
        year: u32,
        cfg: RunnerConfig,
    ) -> Self {
        Self {
            grid,
            surrogate,
            scenario,
            year,
            cfg,
        }
    }

    /// Forecast every member: chunked stacked inference, then per-member
    /// verification and (optionally) simulator fallback.
    pub fn run(&self, windows: &[MemberWindow]) -> Result<EnsembleOutcome, ForecastError> {
        if windows.is_empty() {
            return Err(ForecastError::EmptyBatch);
        }
        let chunk = self.cfg.chunk.max(1);
        let verifier = self.cfg.verifier.map(|cfg| Verifier::new(self.grid, cfg));
        let mut out = EnsembleOutcome::default();

        for group in windows.chunks(chunk) {
            let refs: Vec<&[Snapshot]> = group.iter().map(|m| m.window.as_slice()).collect();
            let t0 = Instant::now();
            let predictions = {
                let _span = cobs::span!("ensemble.predict_batch");
                self.surrogate.predict_batch(&refs)?
            };
            let elapsed = t0.elapsed();
            cobs::histogram!("ensemble.inference_seconds").record_duration(elapsed);
            out.inference_seconds += elapsed.as_secs_f64();
            out.batches += 1;

            for (mw, prediction) in group.iter().zip(predictions) {
                out.members.push(self.finish_member(
                    mw,
                    prediction,
                    verifier.as_ref(),
                    &mut out.verify_seconds,
                    &mut out.fallback_seconds,
                )?);
            }
        }
        Ok(out)
    }

    /// Verify one member's surrogate episode and fall back if configured.
    fn finish_member(
        &self,
        mw: &MemberWindow,
        prediction: Vec<Snapshot>,
        verifier: Option<&Verifier<'_>>,
        verify_seconds: &mut f64,
        fallback_seconds: &mut f64,
    ) -> Result<MemberOutcome, ForecastError> {
        let t_out = prediction.len();
        let (verdicts, passed) = match verifier {
            None => (Vec::new(), true),
            Some(v) => {
                let t0 = Instant::now();
                let verdicts = {
                    let _span = cobs::span!("ensemble.verify");
                    v.check_episode(&mw.window[0], &prediction)
                };
                let elapsed = t0.elapsed();
                cobs::histogram!("ensemble.verify_seconds").record_duration(elapsed);
                *verify_seconds += elapsed.as_secs_f64();
                let passed = verdicts.len() == t_out && verdicts.iter().all(|v| v.passed);
                if passed {
                    cobs::counter!("ensemble.members.passed").inc();
                } else {
                    cobs::counter!("ensemble.members.failed").inc();
                }
                (verdicts, passed)
            }
        };

        if passed || !self.cfg.fallback {
            return Ok(MemberOutcome {
                member_id: mw.perturbation.member_id,
                forecast: prediction,
                verdicts,
                passed,
                fell_back: false,
            });
        }

        // Hybrid fallback: simulate this member's episode under its own
        // forcing, starting from its initial condition.
        cobs::counter!("ensemble.roms_fallback").inc();
        let t0 = Instant::now();
        let sim = {
            let _span = cobs::span!("ensemble.roms_fallback");
            let mut ocean = self.scenario.ocean_config(self.grid, self.year);
            ocean.forcing = mw.forcing.clone();
            let mut roms = Roms::new(self.grid, ocean);
            roms.load(&mw.window[0]);
            roms.record(t_out, self.surrogate.snapshot_interval)
        };
        let elapsed = t0.elapsed();
        cobs::histogram!("ensemble.fallback_seconds").record_duration(elapsed);
        *fallback_seconds += elapsed.as_secs_f64();
        if sim.is_empty() {
            return Err(ForecastError::EmptyEpisode);
        }
        Ok(MemberOutcome {
            member_id: mw.perturbation.member_id,
            forecast: sim,
            verdicts,
            passed,
            fell_back: true,
        })
    }
}

/// Run an ensemble across a worker-thread pool. Each worker rebuilds the
/// surrogate from `spec` (parameters are thread-local `Rc`s; the spec is
/// `Send`) and processes a contiguous slice of members with the chunked
/// stacked path of [`EnsembleRunner::run`]. Member order and per-member
/// results are identical to a serial run.
pub fn run_parallel(
    spec: &SurrogateSpec,
    grid: &Grid,
    scenario: &Scenario,
    year: u32,
    cfg: RunnerConfig,
    windows: &[MemberWindow],
) -> Result<EnsembleOutcome, ForecastError> {
    if windows.is_empty() {
        return Err(ForecastError::EmptyBatch);
    }
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    }
    .min(windows.len());

    if threads <= 1 {
        let local = spec.instantiate();
        return EnsembleRunner::new(grid, &local, scenario, year, cfg).run(windows);
    }

    let per = windows.len().div_ceil(threads);
    let slices: Vec<&[MemberWindow]> = windows.chunks(per).collect();
    let results: Vec<Result<EnsembleOutcome, ForecastError>> = std::thread::scope(|s| {
        let handles: Vec<_> = slices
            .into_iter()
            .map(|slice| {
                s.spawn(move || {
                    let local = spec.instantiate();
                    EnsembleRunner::new(grid, &local, scenario, year, cfg).run(slice)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ensemble worker panicked"))
            .collect()
    });
    let mut parts = Vec::with_capacity(results.len());
    for r in results {
        parts.push(r?);
    }
    Ok(EnsembleOutcome::merge(parts))
}
