//! The scenario perturbation catalog: deterministic, seed-driven
//! expansion of one base forecasting scenario into an ensemble of member
//! scenarios.
//!
//! A [`PerturbationSpace`] names the forcing axes a study varies — tidal
//! constituent amplitude/phase, the low-frequency weather anomaly, a
//! subtidal mean-level offset (river discharge / precipitation stage
//! proxy), initial-condition noise, and a synthetic storm-surge pulse
//! family. A [`PerturbationCatalog`] pairs the space with a
//! [`SamplingStrategy`] (full grid sweep or Latin-hypercube) and a seed,
//! and draws the concrete [`MemberPerturbation`] list. The same seed
//! always yields bit-identical members — ensembles are reproducible
//! experiments, not one-off rolls.

use ccore::Scenario;
use cocean::{Constituent, ForcingError, TidalForcing};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Period (hours) of the pseudo-constituent carrying a constant subtidal
/// mean-level offset: ~114 years, so `cos(ωt) ≈ 1` over any forecast.
const MEAN_LEVEL_PERIOD_HOURS: f64 = 1.0e6;

/// Closed interval a perturbation parameter is drawn from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParamRange {
    pub lo: f64,
    pub hi: f64,
}

impl ParamRange {
    /// A varying axis.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        Self { lo, hi }
    }

    /// A pinned (non-varying) axis.
    pub fn fixed(v: f64) -> Self {
        Self::new(v, v)
    }

    /// True when the axis actually varies.
    pub fn is_active(&self) -> bool {
        self.hi > self.lo
    }

    /// Map a unit sample into the range.
    pub fn sample(&self, u: f64) -> f64 {
        self.lo + u * (self.hi - self.lo)
    }

    /// Center of the range (value used for inactive axes).
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// The synthetic storm-surge pulse family: a Gaussian sea-level anomaly
/// whose amplitude, duration and landfall time vary per member.
#[derive(Clone, Copy, Debug)]
pub struct SurgeFamily {
    /// Peak anomaly height (m).
    pub amplitude: ParamRange,
    /// Gaussian full width (hours) — the storm's forcing timescale.
    pub duration_hours: ParamRange,
    /// Landfall time as a fraction of the forecast window `[0, 1]`.
    pub peak_frac: ParamRange,
}

impl Default for SurgeFamily {
    fn default() -> Self {
        Self {
            amplitude: ParamRange::new(0.2, 0.8),
            duration_hours: ParamRange::new(3.0, 9.0),
            peak_frac: ParamRange::new(0.3, 0.8),
        }
    }
}

/// One member's concrete surge pulse.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurgePulse {
    /// Peak anomaly (m).
    pub amplitude: f64,
    /// Gaussian full width (s).
    pub duration: f64,
    /// Landfall time as a fraction of the forecast window.
    pub peak_frac: f64,
}

impl SurgePulse {
    /// Anomaly elevation (m) at time `t` for a forecast window spanning
    /// `[t_start, t_end]`.
    pub fn elevation(&self, t: f64, t_start: f64, t_end: f64) -> f64 {
        let t_peak = t_start + self.peak_frac * (t_end - t_start);
        // Gaussian with `duration` as full width at half maximum.
        let sigma = (self.duration / 2.355).max(1.0);
        let z = (t - t_peak) / sigma;
        self.amplitude * (-0.5 * z * z).exp()
    }
}

/// The axes a perturbation study varies, each as a range (use
/// [`ParamRange::fixed`] to pin an axis).
#[derive(Clone, Copy, Debug)]
pub struct PerturbationSpace {
    /// Multiplier on every astronomical constituent amplitude.
    pub tidal_amp_scale: ParamRange,
    /// Phase shift (rad) added to every astronomical constituent.
    pub tidal_phase_shift: ParamRange,
    /// Multiplier on the low-frequency weather-anomaly amplitudes.
    pub anomaly_scale: ParamRange,
    /// Constant subtidal mean-level offset (m) — the river-discharge /
    /// precipitation stage proxy, carried as an ultra-long-period
    /// anomaly constituent.
    pub river_level_offset: ParamRange,
    /// Standard deviation (m) of seeded Gaussian noise added to the
    /// initial-condition free surface (wet cells only).
    pub ic_noise_std: ParamRange,
    /// Optional storm-surge pulse family.
    pub surge: Option<SurgeFamily>,
}

impl Default for PerturbationSpace {
    /// Neutral space: every axis pinned at its identity, no surge —
    /// drawing from it reproduces the base scenario N times.
    fn default() -> Self {
        Self {
            tidal_amp_scale: ParamRange::fixed(1.0),
            tidal_phase_shift: ParamRange::fixed(0.0),
            anomaly_scale: ParamRange::fixed(1.0),
            river_level_offset: ParamRange::fixed(0.0),
            ic_noise_std: ParamRange::fixed(0.0),
            surge: None,
        }
    }
}

impl PerturbationSpace {
    /// The flood-risk study: spring/neap-scale tide uncertainty, a storm
    /// pulse family, elevated river stage, and IC uncertainty.
    pub fn surge_study() -> Self {
        Self {
            tidal_amp_scale: ParamRange::new(0.85, 1.25),
            tidal_phase_shift: ParamRange::new(-0.4, 0.4),
            anomaly_scale: ParamRange::new(0.5, 1.8),
            river_level_offset: ParamRange::new(0.0, 0.15),
            ic_noise_std: ParamRange::new(0.0, 0.02),
            surge: Some(SurgeFamily::default()),
        }
    }

    /// The scalar axes in catalog order (surge axes follow when present).
    fn scalar_axes(&self) -> [ParamRange; 5] {
        [
            self.tidal_amp_scale,
            self.tidal_phase_shift,
            self.anomaly_scale,
            self.river_level_offset,
            self.ic_noise_std,
        ]
    }

    /// All axes, flattened (5 scalar + 3 surge when present).
    fn axes(&self) -> Vec<ParamRange> {
        let mut v = self.scalar_axes().to_vec();
        if let Some(s) = &self.surge {
            v.extend([s.amplitude, s.duration_hours, s.peak_frac]);
        }
        v
    }

    /// Build a member from one point of the unit hypercube.
    fn member_at(&self, member_id: usize, u: &[f64], seed: u64) -> MemberPerturbation {
        let axes = self.axes();
        assert_eq!(u.len(), axes.len());
        let val = |i: usize| axes[i].sample(u[i]);
        MemberPerturbation {
            member_id,
            tidal_amp_scale: val(0),
            tidal_phase_shift: val(1),
            anomaly_scale: val(2),
            river_level_offset: val(3),
            ic_noise_std: val(4),
            surge: self.surge.map(|_| SurgePulse {
                amplitude: val(5),
                duration: val(6) * 3600.0,
                peak_frac: val(7),
            }),
            // Per-member noise stream, decorrelated from the draw stream.
            noise_seed: seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(member_id as u64),
        }
    }
}

/// How member parameter vectors are placed in the perturbation space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Full factorial sweep: `levels` evenly-spaced values per *active*
    /// axis (inactive axes stay at their pinned value). Member count is
    /// `levels^n_active` — exhaustive, for low-dimensional studies.
    GridSweep { levels: usize },
    /// Latin-hypercube: `members` samples, each axis stratified into
    /// `members` bins with a seeded permutation per axis — good coverage
    /// of high-dimensional spaces at any budget.
    LatinHypercube { members: usize },
}

/// A perturbation space + sampling strategy + seed: the reproducible
/// definition of an ensemble.
#[derive(Clone, Debug)]
pub struct PerturbationCatalog {
    pub space: PerturbationSpace,
    pub strategy: SamplingStrategy,
    pub seed: u64,
}

impl PerturbationCatalog {
    pub fn new(space: PerturbationSpace, strategy: SamplingStrategy, seed: u64) -> Self {
        Self {
            space,
            strategy,
            seed,
        }
    }

    /// Draw the concrete member list. Deterministic: the same catalog
    /// (space, strategy, seed) always produces bit-identical members.
    pub fn members(&self) -> Vec<MemberPerturbation> {
        match self.strategy {
            SamplingStrategy::GridSweep { levels } => self.grid_sweep(levels),
            SamplingStrategy::LatinHypercube { members } => self.latin_hypercube(members),
        }
    }

    fn grid_sweep(&self, levels: usize) -> Vec<MemberPerturbation> {
        assert!(levels >= 1, "grid sweep needs at least one level");
        let axes = self.space.axes();
        let active: Vec<usize> = (0..axes.len()).filter(|&i| axes[i].is_active()).collect();
        let count = levels.pow(active.len() as u32);
        assert!(
            count <= 100_000,
            "grid sweep of {count} members ({} active axes × {levels} levels) — use LatinHypercube",
            active.len()
        );
        let mut out = Vec::with_capacity(count);
        for m in 0..count {
            // Inactive axes at their pinned midpoint.
            let mut u: Vec<f64> = axes.iter().map(|_| 0.5).collect();
            let mut rem = m;
            for &ai in &active {
                let level = rem % levels;
                rem /= levels;
                u[ai] = if levels == 1 {
                    0.5
                } else {
                    level as f64 / (levels - 1) as f64
                };
            }
            out.push(self.space.member_at(m, &u, self.seed));
        }
        out
    }

    fn latin_hypercube(&self, members: usize) -> Vec<MemberPerturbation> {
        assert!(members >= 1, "ensemble needs at least one member");
        let axes = self.space.axes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Per axis: a seeded permutation of strata, plus in-stratum jitter.
        let mut coords = vec![vec![0.5f64; axes.len()]; members];
        for (ai, axis) in axes.iter().enumerate() {
            if !axis.is_active() {
                continue; // pinned — skip so adding axes later doesn't reshuffle
            }
            let mut strata: Vec<usize> = (0..members).collect();
            strata.shuffle(&mut rng);
            for (m, &s) in strata.iter().enumerate() {
                let jitter: f64 = rng.gen();
                coords[m][ai] = (s as f64 + jitter) / members as f64;
            }
        }
        coords
            .iter()
            .enumerate()
            .map(|(m, u)| self.space.member_at(m, u, self.seed))
            .collect()
    }
}

/// One ensemble member's concrete perturbation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemberPerturbation {
    pub member_id: usize,
    pub tidal_amp_scale: f64,
    pub tidal_phase_shift: f64,
    pub anomaly_scale: f64,
    pub river_level_offset: f64,
    pub ic_noise_std: f64,
    pub surge: Option<SurgePulse>,
    /// Seed of this member's IC-noise stream.
    pub noise_seed: u64,
}

impl MemberPerturbation {
    /// The member that reproduces the base scenario exactly.
    pub fn identity(member_id: usize) -> Self {
        Self {
            member_id,
            tidal_amp_scale: 1.0,
            tidal_phase_shift: 0.0,
            anomaly_scale: 1.0,
            river_level_offset: 0.0,
            ic_noise_std: 0.0,
            surge: None,
            noise_seed: 0,
        }
    }

    /// Apply the forcing axes to a base parameterization. Every derived
    /// constituent is validated — a perturbation that would produce
    /// non-finite elevations is a typed [`ForcingError`], caught here
    /// rather than as NaN fields deep in a forecast.
    pub fn forcing(&self, base: &TidalForcing) -> Result<TidalForcing, ForcingError> {
        // Periods are carried over untouched (no unit round-trip): the
        // identity member must reproduce the base forcing bit-exactly.
        let mut f = base.clone();
        for c in &mut f.constituents {
            c.amplitude *= self.tidal_amp_scale;
            c.phase += self.tidal_phase_shift;
            c.validate()?;
        }
        for c in &mut f.anomaly {
            c.amplitude *= self.anomaly_scale;
            c.validate()?;
        }
        if self.river_level_offset != 0.0 {
            f.anomaly.push(Constituent::try_new(
                self.river_level_offset,
                MEAN_LEVEL_PERIOD_HOURS,
                0.0,
            )?);
        }
        f.validate()?;
        Ok(f)
    }

    /// Expand a base scenario into this member's scenario: same mesh,
    /// model and budget, perturbed forcing pinned via
    /// [`Scenario::with_forcing`]. `year` selects the base forcing when
    /// the scenario has no explicit override.
    pub fn scenario(&self, base: &Scenario, year: u32) -> Result<Scenario, ForcingError> {
        let perturbed = self.forcing(&base.base_forcing(year))?;
        Ok(base.clone().with_forcing(perturbed))
    }

    /// Short human label (`m007 amp=1.12 phase=+0.20 …`).
    pub fn label(&self) -> String {
        let mut s = format!(
            "m{:03} amp={:.2} phase={:+.2} anom={:.2} river={:+.2} icσ={:.3}",
            self.member_id,
            self.tidal_amp_scale,
            self.tidal_phase_shift,
            self.anomaly_scale,
            self.river_level_offset,
            self.ic_noise_std
        );
        if let Some(p) = &self.surge {
            s.push_str(&format!(
                " surge={:.2}m/{:.1}h@{:.0}%",
                p.amplitude,
                p.duration / 3600.0,
                p.peak_frac * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(seed: u64) -> PerturbationCatalog {
        PerturbationCatalog::new(
            PerturbationSpace::surge_study(),
            SamplingStrategy::LatinHypercube { members: 16 },
            seed,
        )
    }

    #[test]
    fn same_seed_bit_identical_members() {
        let a = catalog(7).members();
        let b = catalog(7).members();
        assert_eq!(a, b, "same seed must reproduce the ensemble exactly");
        let c = catalog(8).members();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn latin_hypercube_stratifies_every_active_axis() {
        let members = catalog(3).members();
        let n = members.len() as f64;
        let space = PerturbationSpace::surge_study();
        // Each axis: exactly one sample per stratum.
        let axis_vals: Vec<f64> = members.iter().map(|m| m.tidal_amp_scale).collect();
        let lo = space.tidal_amp_scale.lo;
        let span = space.tidal_amp_scale.hi - lo;
        let mut strata: Vec<usize> = axis_vals
            .iter()
            .map(|v| (((v - lo) / span) * n).floor().min(n - 1.0) as usize)
            .collect();
        strata.sort_unstable();
        assert_eq!(strata, (0..members.len()).collect::<Vec<_>>());
    }

    #[test]
    fn grid_sweep_covers_cartesian_product() {
        let space = PerturbationSpace {
            tidal_amp_scale: ParamRange::new(0.8, 1.2),
            river_level_offset: ParamRange::new(0.0, 0.2),
            ..Default::default()
        };
        let cat = PerturbationCatalog::new(space, SamplingStrategy::GridSweep { levels: 3 }, 0);
        let members = cat.members();
        assert_eq!(members.len(), 9, "3 levels × 2 active axes");
        // Endpoints and midpoints hit exactly.
        let amps: Vec<f64> = members.iter().map(|m| m.tidal_amp_scale).collect();
        assert!(amps.iter().any(|&a| (a - 0.8).abs() < 1e-12));
        assert!(amps.iter().any(|&a| (a - 1.0).abs() < 1e-12));
        assert!(amps.iter().any(|&a| (a - 1.2).abs() < 1e-12));
        // Inactive axes pinned.
        assert!(members.iter().all(|m| m.anomaly_scale == 1.0));
        assert!(members.iter().all(|m| m.ic_noise_std == 0.0));
    }

    #[test]
    fn identity_member_reproduces_base_forcing() {
        let base = TidalForcing::for_year(0);
        let f = MemberPerturbation::identity(0).forcing(&base).unwrap();
        let probe: f64 = (0..50).map(|k| f.elevation(0.0, k as f64 * 977.0)).sum();
        let probe_base: f64 = (0..50).map(|k| base.elevation(0.0, k as f64 * 977.0)).sum();
        assert_eq!(probe, probe_base);
    }

    #[test]
    fn perturbed_forcing_scales_and_shifts() {
        let base = TidalForcing::single(1.0, 12.0);
        let mut m = MemberPerturbation::identity(0);
        m.tidal_amp_scale = 2.0;
        let f = m.forcing(&base).unwrap();
        assert!((f.elevation(0.0, 0.0) - 2.0).abs() < 1e-12);

        let mut m = MemberPerturbation::identity(1);
        m.river_level_offset = 0.3;
        let f = m.forcing(&base).unwrap();
        // Offset rides on top of the tide (cos(ω·0)≈1 for the huge period).
        assert!((f.elevation(0.0, 0.0) - 1.3).abs() < 1e-9);
    }

    #[test]
    fn invalid_perturbation_is_typed_error() {
        let base = TidalForcing::single(1.0, 12.0);
        let mut m = MemberPerturbation::identity(0);
        m.tidal_amp_scale = f64::NAN;
        assert!(matches!(
            m.forcing(&base),
            Err(ForcingError::NonFiniteAmplitude { .. })
        ));
    }

    #[test]
    fn surge_pulse_peaks_at_landfall() {
        let p = SurgePulse {
            amplitude: 0.5,
            duration: 4.0 * 3600.0,
            peak_frac: 0.5,
        };
        let (t0, t1) = (0.0, 8.0 * 3600.0);
        let peak = p.elevation(4.0 * 3600.0, t0, t1);
        assert!((peak - 0.5).abs() < 1e-12);
        assert!(p.elevation(0.0, t0, t1) < peak);
        assert!(p.elevation(t1, t0, t1) < peak);
    }

    #[test]
    fn member_scenario_pins_perturbed_forcing() {
        let base = ccore::Scenario::small();
        let mut m = MemberPerturbation::identity(0);
        m.tidal_amp_scale = 1.5;
        let sc = m.scenario(&base, 1).unwrap();
        let f = sc.forcing.expect("member scenario pins forcing");
        let base_f = TidalForcing::for_year(1);
        assert!(
            (f.constituents[0].amplitude - 1.5 * base_f.constituents[0].amplitude).abs() < 1e-12
        );
    }
}
