//! Member episode-window synthesis: expand one simulated base window into
//! N member windows *without* re-running the physics per member.
//!
//! A forecast episode needs the initial condition plus `t_out` future
//! boundary frames consistent with the member's forcing. Simulating every
//! member's window with ROMS is the naive path (and what
//! `bench_ensemble`'s baseline measures); the catalog instead constructs
//! perturbation families whose boundary response is known analytically —
//! tidal amplitude/phase scaling, anomaly scaling, mean-level offsets and
//! surge pulses all enter the free surface as the forcing *elevation
//! delta* — so member windows are synthesized from one shared base run:
//!
//! ```text
//! ζ_member(x, t) = ζ_base(x, t) + [η_member(t) − η_base(t)] + surge(t)
//!                 (+ seeded IC noise on frame 0)
//! ```
//!
//! applied on wet cells, with `η` the prescribed boundary elevation. The
//! co-oscillating-level approximation (the basin tracks the boundary
//! level uniformly at these scales) is exactly the regime where the
//! estuary's surge response is barotropic; velocities keep the base run's
//! values.

use ccore::Scenario;
use cgrid::Grid;
use cocean::{ForcingError, Snapshot, TidalForcing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::catalog::MemberPerturbation;

/// One member's forecast inputs: the perturbation, its forcing, and the
/// synthesized episode window (IC + boundary frames).
#[derive(Clone, Debug)]
pub struct MemberWindow {
    pub perturbation: MemberPerturbation,
    /// The member's full forcing parameterization (used by ROMS fallback).
    pub forcing: TidalForcing,
    pub window: Vec<Snapshot>,
}

/// Seeded standard-normal draw (Box–Muller over the rand shim).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Synthesize every member's episode window from one shared base window.
///
/// `base_window` is a simulated episode window of the base scenario
/// (`t_out + 1` snapshots); `year` selects the base forcing when the
/// scenario has no override. Deterministic: member windows depend only on
/// the base window and each member's parameters/seed.
pub fn synthesize_windows(
    scenario: &Scenario,
    grid: &Grid,
    base_window: &[Snapshot],
    year: u32,
    members: &[MemberPerturbation],
) -> Result<Vec<MemberWindow>, ForcingError> {
    assert!(!base_window.is_empty(), "base window must not be empty");
    let base_forcing = scenario.base_forcing(year);
    let t_start = base_window[0].time;
    let t_end = base_window[base_window.len() - 1].time;
    // Wet mask in snapshot layout.
    let (ny, nx) = (base_window[0].ny, base_window[0].nx);
    let wet: Vec<bool> = (0..ny)
        .flat_map(|j| (0..nx).map(move |i| (j, i)))
        .map(|(j, i)| grid.mask_rho.get(j as isize, i as isize) > 0.5)
        .collect();
    // Base boundary elevation per frame — shared by every member.
    let base_elev: Vec<f64> = base_window
        .iter()
        .map(|s| base_forcing.elevation(0.0, s.time))
        .collect();

    members
        .iter()
        .map(|m| {
            let forcing = m.forcing(&base_forcing)?;
            let mut window = base_window.to_vec();
            for (snap, &eta0) in window.iter_mut().zip(&base_elev) {
                // Uniform co-oscillation: the boundary-elevation delta of
                // this member's forcing, evaluated at the boundary origin
                // (the alongshore lag is negligible over estuary scales).
                let mut delta = forcing.elevation(0.0, snap.time) - eta0;
                if let Some(p) = &m.surge {
                    delta += p.elevation(snap.time, t_start, t_end);
                }
                if delta != 0.0 {
                    let d = delta as f32;
                    for (z, &w) in snap.zeta.iter_mut().zip(&wet) {
                        if w {
                            *z += d;
                        }
                    }
                }
            }
            if m.ic_noise_std > 0.0 {
                let mut rng = StdRng::seed_from_u64(m.noise_seed);
                let std = m.ic_noise_std;
                for (z, &w) in window[0].zeta.iter_mut().zip(&wet) {
                    // Draw for every cell (wet or not) so the noise field
                    // is independent of the mask geometry.
                    let n = gaussian(&mut rng) * std;
                    if w {
                        *z += n as f32;
                    }
                }
            }
            Ok(MemberWindow {
                perturbation: *m,
                forcing,
                window,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SurgePulse;

    fn setup() -> (Scenario, Grid, Vec<Snapshot>) {
        let sc = Scenario::small();
        let grid = sc.grid();
        let window = sc.simulate_archive(&grid, 0, sc.t_out + 1);
        (sc, grid, window)
    }

    #[test]
    fn identity_member_window_is_base_window() {
        let (sc, grid, base) = setup();
        let members = [MemberPerturbation::identity(0)];
        let w = synthesize_windows(&sc, &grid, &base, 0, &members).unwrap();
        assert_eq!(w.len(), 1);
        for (a, b) in w[0].window.iter().zip(&base) {
            assert_eq!(a.zeta, b.zeta, "identity member must be bit-identical");
            assert_eq!(a.u, b.u);
        }
    }

    #[test]
    fn synthesis_is_deterministic_and_seed_sensitive() {
        let (sc, grid, base) = setup();
        let mut m = MemberPerturbation::identity(0);
        m.ic_noise_std = 0.05;
        m.noise_seed = 42;
        let a = synthesize_windows(&sc, &grid, &base, 0, &[m]).unwrap();
        let b = synthesize_windows(&sc, &grid, &base, 0, &[m]).unwrap();
        assert_eq!(a[0].window[0].zeta, b[0].window[0].zeta);
        let mut m2 = m;
        m2.noise_seed = 43;
        let c = synthesize_windows(&sc, &grid, &base, 0, &[m2]).unwrap();
        assert_ne!(a[0].window[0].zeta, c[0].window[0].zeta);
    }

    #[test]
    fn surge_pulse_raises_wet_cells_only() {
        let (sc, grid, base) = setup();
        let mut m = MemberPerturbation::identity(0);
        m.surge = Some(SurgePulse {
            amplitude: 0.5,
            duration: 4.0 * 3600.0,
            peak_frac: 0.5,
        });
        let w = synthesize_windows(&sc, &grid, &base, 0, &[m]).unwrap();
        let mid = w[0].window.len() / 2;
        let mut raised = 0usize;
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let idx = j * grid.nx + i;
                let d = w[0].window[mid].zeta[idx] - base[mid].zeta[idx];
                if grid.mask_rho.get(j as isize, i as isize) > 0.5 {
                    assert!(d > 0.0, "wet cell must be raised near landfall");
                    raised += 1;
                } else {
                    assert_eq!(d, 0.0, "land cells untouched");
                }
            }
        }
        assert!(raised > 0);
    }

    #[test]
    fn ic_noise_touches_only_first_frame() {
        let (sc, grid, base) = setup();
        let mut m = MemberPerturbation::identity(0);
        m.ic_noise_std = 0.03;
        m.noise_seed = 9;
        let w = synthesize_windows(&sc, &grid, &base, 0, &[m]).unwrap();
        assert_ne!(w[0].window[0].zeta, base[0].zeta);
        for (a, b) in w[0].window[1..].iter().zip(&base[1..]) {
            assert_eq!(a.zeta, b.zeta);
        }
    }

    #[test]
    fn amplitude_scaling_changes_boundary_frames() {
        let (sc, grid, base) = setup();
        let mut m = MemberPerturbation::identity(0);
        m.tidal_amp_scale = 1.4;
        let w = synthesize_windows(&sc, &grid, &base, 0, &[m]).unwrap();
        let frames_changed = w[0]
            .window
            .iter()
            .zip(&base)
            .filter(|(a, b)| a.zeta != b.zeta)
            .count();
        assert!(
            frames_changed >= base.len() - 1,
            "amplitude scaling must move (almost) every frame, got {frames_changed}"
        );
    }
}
