//! Probabilistic ensemble products: per-cell moments and quantiles,
//! exceedance-probability maps (the flood-risk product), member ranking
//! against a reference run, and verification summaries.
//!
//! All statistics are computed over the member axis with a deterministic
//! reduction order, so a seeded ensemble yields bit-identical products on
//! every run.

use ccore::ErrorTable;
use cgrid::Grid;
use cocean::Snapshot;

use crate::runner::EnsembleOutcome;

/// Per-cell summary of one scalar field across ensemble members.
#[derive(Clone, Debug)]
pub struct FieldSummary {
    pub ny: usize,
    pub nx: usize,
    /// Quantile probabilities the `quantiles` rows correspond to.
    pub probs: Vec<f64>,
    pub mean: Vec<f32>,
    /// Ensemble spread (population standard deviation).
    pub std: Vec<f32>,
    pub min: Vec<f32>,
    pub max: Vec<f32>,
    /// `quantiles[q][cell]` for each probability in `probs`.
    pub quantiles: Vec<Vec<f32>>,
}

impl FieldSummary {
    /// Summarize `fields` (one `ny·nx` slice per member) across members.
    pub fn across_members(fields: &[Vec<f32>], ny: usize, nx: usize, probs: &[f64]) -> Self {
        assert!(!fields.is_empty(), "summary of an empty ensemble");
        let cells = ny * nx;
        for f in fields {
            assert_eq!(f.len(), cells, "member field size mismatch");
        }
        for &p in probs {
            assert!((0.0..=1.0).contains(&p), "quantile prob {p} out of range");
        }
        let n = fields.len();
        let mut mean = vec![0.0f32; cells];
        let mut std = vec![0.0f32; cells];
        let mut min = vec![0.0f32; cells];
        let mut max = vec![0.0f32; cells];
        let mut quantiles = vec![vec![0.0f32; cells]; probs.len()];
        let mut column = vec![0.0f32; n];
        for c in 0..cells {
            for (m, f) in fields.iter().enumerate() {
                column[m] = f[c];
            }
            // f64 accumulation: the mean must not drift with member count.
            let mu = column.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
            let var = column
                .iter()
                .map(|&v| (v as f64 - mu) * (v as f64 - mu))
                .sum::<f64>()
                / n as f64;
            mean[c] = mu as f32;
            std[c] = var.sqrt() as f32;
            column.sort_by(|a, b| a.total_cmp(b));
            min[c] = column[0];
            max[c] = column[n - 1];
            for (qi, &p) in probs.iter().enumerate() {
                quantiles[qi][c] = sorted_quantile(&column, p);
            }
        }
        Self {
            ny,
            nx,
            probs: probs.to_vec(),
            mean,
            std,
            min,
            max,
            quantiles,
        }
    }
}

/// Linear-interpolation quantile of an ascending-sorted slice.
fn sorted_quantile(sorted: &[f32], p: f64) -> f32 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Probabilistic products of one ensemble run.
#[derive(Clone, Debug)]
pub struct EnsembleStats {
    pub n_members: usize,
    /// Per-member peak free surface (max over forecast time, per cell) —
    /// the field exceedance maps and surge quantiles derive from.
    pub member_peak_zeta: Vec<Vec<f32>>,
    /// Peak-ζ summary across members (the storm-surge envelope).
    pub peak_zeta: FieldSummary,
    /// Final-step ζ summary.
    pub final_zeta: FieldSummary,
    /// Final-step surface-layer u / v summaries.
    pub final_surface_u: FieldSummary,
    pub final_surface_v: FieldSummary,
    /// Fraction of members whose every verified transition passed.
    pub pass_rate: f64,
    /// Fraction of members recomputed by the simulator.
    pub fallback_rate: f64,
}

impl EnsembleStats {
    /// Default quantile probabilities (10/50/90%).
    pub const DEFAULT_PROBS: [f64; 3] = [0.1, 0.5, 0.9];

    /// Compute the products of an ensemble outcome.
    pub fn compute(outcome: &EnsembleOutcome, probs: &[f64]) -> Self {
        assert!(!outcome.members.is_empty(), "stats of an empty ensemble");
        let first = &outcome.members[0].forecast[0];
        let (ny, nx, nz) = (first.ny, first.nx, first.nz);
        let cells = ny * nx;
        let surface = nz - 1; // bottom layer first ⇒ top layer last

        let mut peaks: Vec<Vec<f32>> = Vec::with_capacity(outcome.members.len());
        let mut finals_z: Vec<Vec<f32>> = Vec::with_capacity(outcome.members.len());
        let mut finals_u: Vec<Vec<f32>> = Vec::with_capacity(outcome.members.len());
        let mut finals_v: Vec<Vec<f32>> = Vec::with_capacity(outcome.members.len());
        for m in &outcome.members {
            assert!(
                !m.forecast.is_empty(),
                "member {} has no forecast",
                m.member_id
            );
            let mut peak = vec![f32::NEG_INFINITY; cells];
            for snap in &m.forecast {
                for (p, &z) in peak.iter_mut().zip(&snap.zeta) {
                    *p = p.max(z);
                }
            }
            peaks.push(peak);
            let last = m.forecast.last().expect("non-empty forecast");
            finals_z.push(last.zeta.clone());
            let s0 = surface * cells;
            finals_u.push(last.u[s0..s0 + cells].to_vec());
            finals_v.push(last.v[s0..s0 + cells].to_vec());
        }

        Self {
            n_members: outcome.members.len(),
            peak_zeta: FieldSummary::across_members(&peaks, ny, nx, probs),
            final_zeta: FieldSummary::across_members(&finals_z, ny, nx, probs),
            final_surface_u: FieldSummary::across_members(&finals_u, ny, nx, probs),
            final_surface_v: FieldSummary::across_members(&finals_v, ny, nx, probs),
            member_peak_zeta: peaks,
            pass_rate: outcome.pass_rate(),
            fallback_rate: outcome.fallback_members() as f64 / outcome.members.len() as f64,
        }
    }

    /// Exceedance-probability map: per cell, the fraction of members whose
    /// peak free surface exceeds `threshold` (m) — `P[ζ_max > threshold]`,
    /// the flood-risk product.
    pub fn exceedance(&self, threshold: f32) -> Vec<f32> {
        let cells = self.peak_zeta.ny * self.peak_zeta.nx;
        let mut out = vec![0.0f32; cells];
        for peak in &self.member_peak_zeta {
            for (o, &p) in out.iter_mut().zip(peak) {
                if p > threshold {
                    *o += 1.0;
                }
            }
        }
        let inv = 1.0 / self.n_members as f32;
        for o in &mut out {
            *o *= inv;
        }
        out
    }
}

/// One member's skill against a reference trajectory.
#[derive(Clone, Debug)]
pub struct MemberRank {
    pub member_id: usize,
    pub table: ErrorTable,
    /// Ranking score: ζ RMSE (m).
    pub score: f64,
}

/// Rank members by ζ RMSE against a reference run (ascending — best
/// first). `reference` must span the members' forecast length.
pub fn rank_members(
    grid: &Grid,
    reference: &[Snapshot],
    outcome: &EnsembleOutcome,
) -> Vec<MemberRank> {
    let mut ranks: Vec<MemberRank> = outcome
        .members
        .iter()
        .map(|m| {
            let table = ErrorTable::between(grid, &reference[..m.forecast.len()], &m.forecast);
            MemberRank {
                member_id: m.member_id,
                score: table.rmse[3],
                table,
            }
        })
        .collect();
    ranks.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then(a.member_id.cmp(&b.member_id))
    });
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(cells: usize, v: f32) -> Vec<f32> {
        vec![v; cells]
    }

    #[test]
    fn summary_of_constant_members() {
        let fields = vec![field(6, 1.0), field(6, 2.0), field(6, 3.0)];
        let s = FieldSummary::across_members(&fields, 2, 3, &[0.0, 0.5, 1.0]);
        assert!(s.mean.iter().all(|&m| (m - 2.0).abs() < 1e-6));
        assert!(s.min.iter().all(|&m| m == 1.0));
        assert!(s.max.iter().all(|&m| m == 3.0));
        assert!(s.quantiles[1].iter().all(|&q| (q - 2.0).abs() < 1e-6));
        // population std of {1,2,3} = sqrt(2/3)
        let want = (2.0f64 / 3.0).sqrt() as f32;
        assert!(s.std.iter().all(|&d| (d - want).abs() < 1e-6));
    }

    #[test]
    fn quantiles_are_monotone_and_mean_bounded() {
        // Structured but irregular member fields.
        let members = 7;
        let cells = 12;
        let fields: Vec<Vec<f32>> = (0..members)
            .map(|m| {
                (0..cells)
                    .map(|c| ((m * 31 + c * 17) % 13) as f32 * 0.1 - 0.5)
                    .collect()
            })
            .collect();
        let s = FieldSummary::across_members(&fields, 3, 4, &[0.1, 0.5, 0.9]);
        for c in 0..cells {
            assert!(s.quantiles[0][c] <= s.quantiles[1][c]);
            assert!(s.quantiles[1][c] <= s.quantiles[2][c]);
            assert!(s.mean[c] >= s.min[c] - 1e-6 && s.mean[c] <= s.max[c] + 1e-6);
        }
    }

    #[test]
    fn sorted_quantile_interpolates() {
        let v = [0.0f32, 1.0, 2.0, 3.0];
        assert_eq!(sorted_quantile(&v, 0.0), 0.0);
        assert_eq!(sorted_quantile(&v, 1.0), 3.0);
        assert!((sorted_quantile(&v, 0.5) - 1.5).abs() < 1e-6);
    }
}
