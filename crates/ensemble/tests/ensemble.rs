//! End-to-end ensemble engine tests: seeded determinism (bit-identical
//! members, windows and statistics), chunk/thread invariance of member
//! forecasts, hybrid fallback behavior, and quantile sanity properties.

use std::sync::OnceLock;

use ccore::{train_surrogate, Scenario, SurrogateSpec, TrainedSurrogate};
use censemble::{
    rank_members, synthesize_windows, EnsembleRunner, EnsembleStats, PerturbationCatalog,
    PerturbationSpace, RunnerConfig, SamplingStrategy,
};
use cgrid::Grid;
use cocean::Snapshot;
use cphysics::VerifierConfig;
use proptest::prelude::*;

// Trained once, shared by every test (training dominates test wall time).
// Live models hold thread-local `Rc`s, so the shared state is the `Send`
// spec; each test instantiates its own local model from it.
struct Ctx {
    sc: Scenario,
    spec: SurrogateSpec,
    archive: Vec<Snapshot>,
}

static CTX: OnceLock<Ctx> = OnceLock::new();

fn setup() -> (Scenario, Grid, TrainedSurrogate, Vec<Snapshot>) {
    let ctx = CTX.get_or_init(|| {
        let mut sc = Scenario::small();
        sc.epochs = 2;
        let grid = sc.grid();
        let archive = sc.simulate_archive(&grid, 0, 40);
        let trained = train_surrogate(&sc, &grid, &archive);
        Ctx {
            spec: trained.spec(),
            sc,
            archive,
        }
    });
    (
        ctx.sc.clone(),
        ctx.sc.grid(),
        ctx.spec.instantiate(),
        ctx.archive.clone(),
    )
}

fn catalog(members: usize, seed: u64) -> PerturbationCatalog {
    PerturbationCatalog::new(
        PerturbationSpace::surge_study(),
        SamplingStrategy::LatinHypercube { members },
        seed,
    )
}

#[test]
fn seeded_ensemble_is_bit_identical_end_to_end() {
    let (sc, grid, trained, archive) = setup();
    let base = &archive[..sc.t_out + 1];

    let run = |seed: u64| {
        let members = catalog(8, seed).members();
        let windows = synthesize_windows(&sc, &grid, base, 0, &members).unwrap();
        let cfg = RunnerConfig {
            chunk: 4,
            verifier: Some(VerifierConfig { threshold: 1e9 }),
            fallback: false,
            threads: 1,
        };
        let outcome = EnsembleRunner::new(&grid, &trained, &sc, 0, cfg)
            .run(&windows)
            .unwrap();
        EnsembleStats::compute(&outcome, &EnsembleStats::DEFAULT_PROBS)
    };

    let a = run(42);
    let b = run(42);
    assert_eq!(a.peak_zeta.mean, b.peak_zeta.mean, "same seed ⇒ same stats");
    assert_eq!(a.peak_zeta.quantiles, b.peak_zeta.quantiles);
    assert_eq!(a.exceedance(0.2), b.exceedance(0.2));

    let c = run(43);
    assert_ne!(
        a.peak_zeta.mean, c.peak_zeta.mean,
        "different seed ⇒ different ensemble"
    );
}

#[test]
fn member_forecasts_are_chunk_and_thread_invariant() {
    let (sc, grid, trained, archive) = setup();
    let members = catalog(6, 7).members();
    let windows = synthesize_windows(&sc, &grid, &archive[..sc.t_out + 1], 0, &members).unwrap();
    let cfg = |chunk: usize| RunnerConfig {
        chunk,
        verifier: None,
        fallback: false,
        threads: 1,
    };

    let whole = EnsembleRunner::new(&grid, &trained, &sc, 0, cfg(16))
        .run(&windows)
        .unwrap();
    let chunked = EnsembleRunner::new(&grid, &trained, &sc, 0, cfg(2))
        .run(&windows)
        .unwrap();
    assert_eq!(whole.batches, 1);
    assert_eq!(chunked.batches, 3);
    for (a, b) in whole.members.iter().zip(&chunked.members) {
        assert_eq!(a.member_id, b.member_id);
        for (sa, sb) in a.forecast.iter().zip(&b.forecast) {
            assert_eq!(
                sa.zeta, sb.zeta,
                "chunking must not change a member's forecast"
            );
            assert_eq!(sa.u, sb.u);
        }
    }

    // Thread fan-out rebuilds the model from the spec on each worker —
    // still the same forecasts, in the same member order.
    let spec = trained.spec();
    let parallel = censemble::run_parallel(
        &spec,
        &grid,
        &sc,
        0,
        RunnerConfig {
            chunk: 2,
            verifier: None,
            fallback: false,
            threads: 2,
        },
        &windows,
    )
    .unwrap();
    assert_eq!(parallel.members.len(), whole.members.len());
    for (a, b) in whole.members.iter().zip(&parallel.members) {
        assert_eq!(a.member_id, b.member_id);
        for (sa, sb) in a.forecast.iter().zip(&b.forecast) {
            assert_eq!(
                sa.zeta, sb.zeta,
                "threading must not change a member's forecast"
            );
        }
    }
}

#[test]
fn strict_verifier_forces_member_fallback() {
    let (sc, grid, trained, archive) = setup();
    let members = catalog(3, 1).members();
    let windows = synthesize_windows(&sc, &grid, &archive[..sc.t_out + 1], 0, &members).unwrap();

    let fallback_metric = cobs::counter!("ensemble.roms_fallback");
    let fallbacks_before = fallback_metric.get();
    let strict = EnsembleRunner::new(
        &grid,
        &trained,
        &sc,
        0,
        RunnerConfig {
            chunk: 8,
            verifier: Some(VerifierConfig { threshold: 1e-12 }),
            fallback: true,
            threads: 1,
        },
    )
    .run(&windows)
    .unwrap();
    assert_eq!(strict.fallback_members(), 3, "every member must fall back");
    assert!(
        fallback_metric.get() - fallbacks_before >= 3,
        "ROMS fallbacks must surface in the global metrics registry"
    );
    assert_eq!(strict.pass_rate(), 0.0);
    assert!(strict.fallback_seconds > 0.0);
    assert!(strict
        .members
        .iter()
        .all(|m| m.fell_back && !m.verdicts.is_empty()));

    let loose = EnsembleRunner::new(
        &grid,
        &trained,
        &sc,
        0,
        RunnerConfig {
            chunk: 8,
            verifier: Some(VerifierConfig { threshold: 1e9 }),
            fallback: true,
            threads: 1,
        },
    )
    .run(&windows)
    .unwrap();
    assert_eq!(loose.ai_members(), 3);
    assert_eq!(loose.pass_rate(), 1.0);
    assert_eq!(loose.fallback_seconds, 0.0);
}

#[test]
fn stats_products_are_consistent() {
    let (sc, grid, trained, archive) = setup();
    let members = catalog(8, 5).members();
    let base = &archive[..sc.t_out + 1];
    let windows = synthesize_windows(&sc, &grid, base, 0, &members).unwrap();
    let outcome = EnsembleRunner::new(
        &grid,
        &trained,
        &sc,
        0,
        RunnerConfig {
            chunk: 8,
            verifier: Some(VerifierConfig { threshold: 1e9 }),
            fallback: false,
            threads: 1,
        },
    )
    .run(&windows)
    .unwrap();
    let stats = EnsembleStats::compute(&outcome, &[0.1, 0.5, 0.9]);

    // Quantile monotonicity + mean within [min, max], per cell.
    let cells = grid.ny * grid.nx;
    for c in 0..cells {
        assert!(stats.peak_zeta.quantiles[0][c] <= stats.peak_zeta.quantiles[1][c]);
        assert!(stats.peak_zeta.quantiles[1][c] <= stats.peak_zeta.quantiles[2][c]);
        assert!(stats.peak_zeta.mean[c] >= stats.peak_zeta.min[c] - 1e-5);
        assert!(stats.peak_zeta.mean[c] <= stats.peak_zeta.max[c] + 1e-5);
    }

    // Exceedance probabilities are proper fractions, monotone in the
    // threshold, and 0 beyond the ensemble maximum.
    let lo = stats.exceedance(-10.0);
    let mid = stats.exceedance(0.1);
    let hi = stats.exceedance(1e9);
    for c in 0..cells {
        assert!((0.0..=1.0).contains(&mid[c]));
        assert!(lo[c] >= mid[c] && mid[c] >= hi[c]);
        assert_eq!(hi[c], 0.0);
    }

    // Surge members raise flood risk relative to the base run's envelope:
    // at least one wet cell must exceed a mid threshold in some member.
    assert!(mid.iter().any(|&p| p > 0.0));

    // Ranking orders by ζ RMSE against the truth.
    let reference = &archive[1..=sc.t_out];
    let ranks = rank_members(&grid, reference, &outcome);
    assert_eq!(ranks.len(), 8);
    for pair in ranks.windows(2) {
        assert!(pair[0].score <= pair[1].score);
    }
}

proptest! {
    #[test]
    fn field_summary_properties_hold(members in 2usize..9, cells in 1usize..40, scale in 0.01f32..10.0) {
        // Synthetic member fields with a deterministic irregular pattern.
        let fields: Vec<Vec<f32>> = (0..members)
            .map(|m| {
                (0..cells)
                    .map(|c| ((m * 37 + c * 101 + m * c * 13) % 29) as f32 * scale - 14.0 * scale)
                    .collect()
            })
            .collect();
        let s = censemble::FieldSummary::across_members(&fields, 1, cells, &[0.1, 0.5, 0.9]);
        for c in 0..cells {
            prop_assert!(s.quantiles[0][c] <= s.quantiles[1][c] + 1e-4 * scale);
            prop_assert!(s.quantiles[1][c] <= s.quantiles[2][c] + 1e-4 * scale);
            prop_assert!(s.min[c] <= s.max[c]);
            prop_assert!(s.mean[c] >= s.min[c] - 1e-3 * scale);
            prop_assert!(s.mean[c] <= s.max[c] + 1e-3 * scale);
            prop_assert!(s.std[c] >= 0.0);
            prop_assert!(s.std[c] <= (s.max[c] - s.min[c]) + 1e-3 * scale);
        }
    }
}
