//! Training loop: Adam over the masked episode loss, activation-memory
//! budgeting, and throughput instrumentation (paper §III-D).
//!
//! The loop is batch-first: the loader stacks episodes through the same
//! `stack_episodes` packing the serving path uses for `predict_batch`, so a
//! step's forward/backward runs the batched SIMD kernels end to end.
//! Gradient accumulation ([`TrainConfig::accum_steps`]) and the data-parallel
//! epoch ([`Trainer::train_epoch_data_parallel`]) both reduce gradients in a
//! fixed positional order, so results are independent of kernel thread count.

use std::time::Instant;

use chpc::run_parallel;
use csurrogate::{episode_loss, CheckpointPolicy, SwinSurrogate};
use ctensor::nn::{load_state_dict, state_dict};
use ctensor::prelude::*;

use crate::checkpoint::TrainCheckpoint;
use crate::dataset::{stack_episodes, Episode};
use crate::loader::DataLoader;

/// Trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub lr: f32,
    pub grad_clip: f32,
    /// Activation-memory budget in bytes: the trainer refuses batches
    /// whose metered forward peak exceeds it (the paper's 80 GB A100
    /// ceiling that forces batch 1 without checkpointing).
    pub memory_budget: Option<usize>,
    /// Tensor compute backend pinned for every step (forward, backward
    /// closures, and optimizer updates all run under it).
    pub backend: BackendChoice,
    /// Micro-batches to accumulate before each optimizer update (≥1).
    /// Gradients are averaged over the accumulated micro-batches in a
    /// fixed positional order, so the result does not depend on kernel
    /// thread count.
    pub accum_steps: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            grad_clip: 1.0,
            memory_budget: None,
            backend: BackendChoice::default(),
            accum_steps: 1,
        }
    }
}

/// Result of one optimizer step.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    pub loss: f32,
    /// Peak activation bytes metered on the tape (incl. checkpoint
    /// transients).
    pub peak_activation_bytes: usize,
    /// Bytes resident on the tape at the end of the forward pass.
    pub resident_activation_bytes: usize,
    pub wall_seconds: f64,
    pub instances: usize,
}

/// Aggregate statistics for an epoch (or fixed step budget).
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochStats {
    pub mean_loss: f32,
    pub instances: usize,
    pub wall_seconds: f64,
    pub instances_per_sec: f64,
    pub peak_activation_bytes: usize,
    /// Episodes lost to dead prefetch workers *during this epoch* — a
    /// non-zero value means the loader skipped instances instead of
    /// crashing, and the epoch trained on less data than scheduled.
    pub dropped_episodes: usize,
}

/// Supervised trainer for the Swin surrogate.
pub struct Trainer {
    pub model: SwinSurrogate,
    pub opt: Adam,
    pub cfg: TrainConfig,
    /// Land/sea mask `(ny, nx)`.
    pub mask: Tensor,
}

impl Trainer {
    pub fn new(model: SwinSurrogate, mask: Tensor, cfg: TrainConfig) -> Self {
        let params = model.params();
        let lr = cfg.lr;
        Self {
            model,
            opt: Adam::new(params, lr),
            cfg,
            mask,
        }
    }

    /// The backend a step runs under: the trainer's own choice, or — when
    /// that is `Auto` — the model's pinned backend, so a model built with
    /// `SwinConfig::with_backend(Scalar)` also bisects its gradient path.
    fn step_backend(&self) -> std::sync::Arc<dyn ctensor::backend::Backend> {
        match self.cfg.backend {
            BackendChoice::Auto => self.model.cfg.backend.resolve(),
            pinned => pinned.resolve(),
        }
    }

    /// Forward + backward on a (possibly batched) episode *without* an
    /// optimizer update: gradients accumulate into the parameters, so
    /// calling this repeatedly before [`Trainer::apply_accumulated`]
    /// implements gradient accumulation.
    pub fn forward_backward(&mut self, batch: &Episode) -> StepStats {
        // Pin the backend for the whole step — the model's own forward
        // scope ends with forward, but backward closures (including
        // checkpoint replays) and the optimizer update must run on the
        // same kernels.
        let _backend = ctensor::backend::scoped(self.step_backend());
        let t0 = Instant::now();
        let instances = batch.x3d.shape()[0];
        let mut g = Graph::new();
        g.training = true;
        let (loss, loss_v, resident) = {
            let _span = cobs::span!("train.forward");
            let x3 = g.constant(batch.x3d.clone());
            let x2 = g.constant(batch.x2d.clone());
            let (p3, p2) = self.model.forward(&mut g, x3, x2);
            let loss = episode_loss(&mut g, p3, p2, &batch.target3, &batch.target2, &self.mask);
            (loss, g.value(loss).item(), g.meter().current)
        };
        cobs::histogram!("train.forward_seconds").record_duration(t0.elapsed());
        if let Some(budget) = self.cfg.memory_budget {
            assert!(
                resident <= budget,
                "activation memory {resident} exceeds budget {budget}; \
                 lower the batch size or enable checkpointing"
            );
        }
        let t_bwd = Instant::now();
        {
            let _span = cobs::span!("train.backward");
            g.backward(loss);
        }
        cobs::histogram!("train.backward_seconds").record_duration(t_bwd.elapsed());
        StepStats {
            loss: loss_v,
            peak_activation_bytes: g.meter().peak,
            resident_activation_bytes: resident,
            wall_seconds: t0.elapsed().as_secs_f64(),
            instances,
        }
    }

    /// Average the gradients accumulated over `micro_batches` calls to
    /// [`Trainer::forward_backward`] (fixed positional order — deterministic
    /// for any kernel thread count), clip, and apply one optimizer update.
    pub fn apply_accumulated(&mut self, micro_batches: usize) {
        let _backend = ctensor::backend::scoped(self.step_backend());
        let _span = cobs::span!("train.optimizer");
        let t0 = Instant::now();
        if micro_batches > 1 {
            let inv = 1.0 / micro_batches as f32;
            for p in self.opt.params() {
                if let Some(g) = p.grad() {
                    p.zero_grad();
                    p.accum_grad(&g.scale(inv));
                }
            }
        }
        clip_grad_norm(self.opt.params(), self.cfg.grad_clip);
        self.opt.step();
        cobs::histogram!("train.optimizer_seconds").record_duration(t0.elapsed());
    }

    /// One forward/backward/update on a (possibly batched) episode.
    pub fn step(&mut self, batch: &Episode) -> StepStats {
        let stats = self.forward_backward(batch);
        self.apply_accumulated(1);
        stats
    }

    /// Evaluation loss (no gradient, no update).
    pub fn eval(&self, batch: &Episode) -> f32 {
        let _backend = ctensor::backend::scoped(self.step_backend());
        let mut g = Graph::inference();
        let x3 = g.constant(batch.x3d.clone());
        let x2 = g.constant(batch.x2d.clone());
        let (p3, p2) = self.model.forward(&mut g, x3, x2);
        let loss = episode_loss(&mut g, p3, p2, &batch.target3, &batch.target2, &self.mask);
        g.value(loss).item()
    }

    /// Run one epoch from a loader; returns aggregate stats.
    ///
    /// Episodes silently skipped by the loader (a prefetch worker died
    /// mid-epoch) are surfaced in [`EpochStats::dropped_episodes`] and
    /// warned about on stderr — training on partial data must be loud.
    pub fn train_epoch(&mut self, loader: &DataLoader, epoch: u64) -> EpochStats {
        let t0 = Instant::now();
        let accum = self.cfg.accum_steps.max(1);
        let dropped_before = loader.dropped_episodes();
        let mut total_loss = 0.0f64;
        let mut instances = 0usize;
        let mut batches = 0usize;
        let mut peak = 0usize;
        let mut pending = 0usize;
        for batch in loader.epoch(epoch) {
            let s = self.forward_backward(&batch);
            total_loss += s.loss as f64;
            instances += s.instances;
            batches += 1;
            peak = peak.max(s.peak_activation_bytes);
            pending += 1;
            if pending == accum {
                self.apply_accumulated(pending);
                pending = 0;
            }
        }
        if pending > 0 {
            // Short tail at the end of the epoch still averages over the
            // micro-batches it actually saw.
            self.apply_accumulated(pending);
        }
        let wall = t0.elapsed().as_secs_f64();
        let dropped = loader.dropped_episodes() - dropped_before;
        cobs::counter!("train.epochs").inc();
        cobs::counter!("train.instances").add(instances as u64);
        cobs::histogram!("train.epoch_seconds").record(wall);
        if dropped > 0 {
            cobs::counter!("train.dropped_episodes").add(dropped as u64);
            eprintln!(
                "[trainer] WARNING: epoch {epoch} dropped {dropped} episode(s) — \
                 prefetch worker(s) died; trained on {instances} of {} instances",
                loader.len()
            );
        }
        EpochStats {
            mean_loss: (total_loss / batches.max(1) as f64) as f32,
            instances,
            wall_seconds: wall,
            instances_per_sec: instances as f64 / wall.max(1e-9),
            peak_activation_bytes: peak,
            dropped_episodes: dropped,
        }
    }

    /// Largest batch size whose *resident* activation footprint fits the
    /// budget, probed by metering forwards on stacked copies of `sample`
    /// (the paper: 1 without checkpointing, 2 with, on an 80 GB A100).
    pub fn max_batch_for_budget(&self, sample: &Episode, budget: usize, cap: usize) -> usize {
        let mut best = 0;
        for b in 1..=cap {
            let batch = crate::dataset::stack_episodes(&vec![sample.clone(); b]);
            let mut g = Graph::new();
            g.training = true;
            let x3 = g.constant(batch.x3d.clone());
            let x2 = g.constant(batch.x2d.clone());
            let (p3, p2) = self.model.forward(&mut g, x3, x2);
            let _ = episode_loss(&mut g, p3, p2, &batch.target3, &batch.target2, &self.mask);
            if g.meter().current <= budget {
                best = b;
            } else {
                break;
            }
        }
        best
    }

    /// One data-parallel "epoch" over an in-memory episode set: fan the
    /// episodes across `workers` model replicas (the same replica-shipping
    /// machinery as the serve pool — parameters travel as a `Send` state
    /// dict and are rebuilt per thread), run batch-first forward/backward on
    /// each worker's contiguous share in stacked micro-batches of
    /// `per_worker_batch`, then all-reduce the instance-weighted gradient
    /// sum at the end of the epoch and apply **one** optimizer update to
    /// this trainer's model.
    ///
    /// Determinism: each worker accumulates serially over its own share, and
    /// the main-thread reduction walks ranks in order with f64 accumulators,
    /// so a given `workers` count always produces bitwise-identical weights;
    /// `workers == 1` matches the serial [`Trainer::step`] on the stacked
    /// set whenever the episode count divides exactly (power-of-two counts
    /// are bitwise-exact). BatchNorm running stats are taken from rank 0.
    pub fn train_epoch_data_parallel(
        &mut self,
        episodes: &[Episode],
        workers: usize,
        per_worker_batch: usize,
    ) -> EpochStats {
        assert!(!episodes.is_empty(), "no episodes to train on");
        assert!(per_worker_batch >= 1);
        let workers = workers.clamp(1, episodes.len());
        let t0 = Instant::now();

        let be = self.step_backend();
        let state = state_dict(&self.model);
        let buffers = self.model.buffers();
        let model_cfg = self.model.cfg.clone();
        let policy = self.model.checkpoint;
        let mask = self.mask.clone();
        let per = episodes.len().div_ceil(workers);

        // (weighted loss sum, instances, instance-weighted flat grad, rank
        // buffers, peak activation bytes) per rank, in rank order.
        type RankResult = (f64, usize, Vec<f64>, Vec<Tensor>, usize);
        let results: Vec<RankResult> = run_parallel(workers, |comm| {
            let _backend = ctensor::backend::scoped(be.clone());
            let rank = comm.rank();
            let lo = (rank * per).min(episodes.len());
            let hi = ((rank + 1) * per).min(episodes.len());
            let share = &episodes[lo..hi];

            let mut model = SwinSurrogate::from_state(model_cfg.clone(), &state);
            model.load_buffers(&buffers);
            model.checkpoint = policy;
            let params = model.params();

            let mut loss_sum = 0.0f64;
            let mut instances = 0usize;
            let mut peak = 0usize;
            let flat_len: usize = params.iter().map(|p| p.numel()).sum();
            let mut flat = vec![0.0f64; flat_len];
            for micro in share.chunks(per_worker_batch) {
                let batch = stack_episodes(micro);
                let n = micro.len();
                let mut g = Graph::new();
                g.training = true;
                let x3 = g.constant(batch.x3d.clone());
                let x2 = g.constant(batch.x2d.clone());
                let (p3, p2) = model.forward(&mut g, x3, x2);
                let loss = episode_loss(&mut g, p3, p2, &batch.target3, &batch.target2, &mask);
                loss_sum += g.value(loss).item() as f64 * n as f64;
                g.backward(loss);
                peak = peak.max(g.meter().peak);
                // Weight each micro-batch's mean gradient by its instance
                // count, so uneven tails combine exactly.
                let mut off = 0usize;
                for p in &params {
                    let gr = p.grad().unwrap_or_else(|| Tensor::zeros(p.value().shape()));
                    for (a, &v) in flat[off..off + p.numel()].iter_mut().zip(gr.as_slice()) {
                        *a += v as f64 * n as f64;
                    }
                    p.zero_grad();
                    off += p.numel();
                }
                instances += n;
            }
            (loss_sum, instances, flat, model.buffers(), peak)
        });

        // Epoch-end all-reduce: rank-order f64 sum, then one update.
        let _backend = ctensor::backend::scoped(be);
        let n_total: usize = results.iter().map(|r| r.1).sum();
        let loss_sum: f64 = results.iter().map(|r| r.0).sum();
        let peak = results.iter().map(|r| r.4).max().unwrap_or(0);
        let mut acc = vec![0.0f64; results[0].2.len()];
        for (_, _, flat, _, _) in &results {
            for (a, b) in acc.iter_mut().zip(flat) {
                *a += *b;
            }
        }
        let inv = 1.0 / n_total as f64;
        let params = self.opt.params().to_vec();
        let mut off = 0usize;
        for p in &params {
            let n = p.numel();
            let shape = p.value().shape().to_vec();
            let g32: Vec<f32> = acc[off..off + n]
                .iter()
                .map(|&v| (v * inv) as f32)
                .collect();
            p.zero_grad();
            p.accum_grad(&Tensor::from_vec(g32, &shape));
            off += n;
        }
        self.model.load_buffers(&results[0].3);
        clip_grad_norm(&params, self.cfg.grad_clip);
        self.opt.step();

        let wall = t0.elapsed().as_secs_f64();
        EpochStats {
            mean_loss: (loss_sum / n_total as f64) as f32,
            instances: n_total,
            wall_seconds: wall,
            instances_per_sec: n_total as f64 / wall.max(1e-9),
            peak_activation_bytes: peak,
            dropped_episodes: 0,
        }
    }

    /// Capture the full training state — parameters, BatchNorm buffers,
    /// Adam moments and step counter — for a later bitwise-identical
    /// resume (see [`TrainCheckpoint`]).
    pub fn save_checkpoint(&self, epoch: u64) -> TrainCheckpoint {
        let (opt_t, m, v) = self.opt.state_snapshot();
        TrainCheckpoint {
            epoch,
            opt_t,
            params: state_dict(&self.model),
            buffers: self.model.buffers(),
            m,
            v,
        }
    }

    /// Restore state captured by [`Trainer::save_checkpoint`]. Returns the
    /// stored epoch so the caller can continue the schedule where it left
    /// off.
    pub fn restore_checkpoint(&mut self, ck: &TrainCheckpoint) -> u64 {
        load_state_dict(&self.model, &ck.params);
        self.model.load_buffers(&ck.buffers);
        self.opt.load_state(ck.opt_t, ck.m.clone(), ck.v.clone());
        ck.epoch
    }

    /// Set the checkpoint policy (affects subsequent steps).
    pub fn set_checkpoint(&mut self, policy: CheckpointPolicy) {
        self.model.checkpoint = policy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{encode_episode, EncodeConfig};
    use crate::normalize::NormStats;
    use cocean::Snapshot;
    use csurrogate::SwinConfig;

    fn synthetic_snaps(n: usize, ny: usize, nx: usize, nz: usize) -> Vec<Snapshot> {
        (0..n)
            .map(|t| {
                let phase = t as f32 * 0.4;
                let mut s = Snapshot {
                    time: t as f64 * 1800.0,
                    nz,
                    ny,
                    nx,
                    zeta: vec![0.0; ny * nx],
                    u: vec![0.0; nz * ny * nx],
                    v: vec![0.0; nz * ny * nx],
                    w: vec![0.0; nz * ny * nx],
                };
                for j in 0..ny {
                    for i in 0..nx {
                        let x = i as f32 * 0.8;
                        s.zeta[j * nx + i] = 0.3 * (phase - x).sin();
                        for k in 0..nz {
                            let idx = s.idx3(k, j, i);
                            s.u[idx] = 0.1 * (phase - x).cos();
                        }
                    }
                }
                s
            })
            .collect()
    }

    fn episode(cfg: &SwinConfig) -> Episode {
        let snaps = synthetic_snaps(cfg.t_out + 1, cfg.ny, cfg.nx, cfg.nz);
        encode_episode(&snaps, &NormStats::identity(), &EncodeConfig::default())
    }

    fn tiny_trainer() -> (SwinConfig, Trainer) {
        let cfg = SwinConfig::tiny(8, 8, 4, 2);
        let model = SwinSurrogate::new(cfg.clone(), 0);
        let mask = Tensor::ones(&[cfg.ny, cfg.nx]);
        let trainer = Trainer::new(model, mask, TrainConfig::default());
        (cfg, trainer)
    }

    #[test]
    fn loss_decreases_over_steps() {
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        let first = trainer.step(&ep).loss;
        let mut last = first;
        for _ in 0..10 {
            last = trainer.step(&ep).loss;
        }
        assert!(
            last < first,
            "training on one episode must reduce its loss: {first} -> {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn eval_is_deterministic_and_improves_with_training() {
        // (eval uses BatchNorm running stats, so it differs from the
        // train-mode loss by design — but it must be repeatable and must
        // drop after fitting.)
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        for _ in 0..3 {
            trainer.step(&ep); // populate running stats + fit a little
        }
        let before = trainer.eval(&ep);
        assert_eq!(before, trainer.eval(&ep), "eval must be deterministic");
        for _ in 0..15 {
            trainer.step(&ep);
        }
        let after = trainer.eval(&ep);
        assert!(
            after < before,
            "eval loss must improve with training: {before} -> {after}"
        );
    }

    #[test]
    fn checkpointing_reduces_resident_bytes() {
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        let plain = trainer.step(&ep);
        trainer.set_checkpoint(CheckpointPolicy::DiscardWMsa);
        let ck = trainer.step(&ep);
        assert!(
            ck.resident_activation_bytes < plain.resident_activation_bytes,
            "{} !< {}",
            ck.resident_activation_bytes,
            plain.resident_activation_bytes
        );
    }

    #[test]
    fn memory_budget_enforced() {
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        trainer.cfg.memory_budget = Some(1); // absurdly small
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            trainer.step(&ep);
        }));
        assert!(r.is_err(), "budget violation must be detected");
    }

    #[test]
    fn train_epoch_surfaces_dropped_episodes() {
        use crate::loader::LoaderConfig;
        use crate::store::SnapshotStore;
        use std::sync::Arc;

        let cfg = SwinConfig::tiny(8, 8, 4, 2);
        let model = SwinSurrogate::new(cfg.clone(), 0);
        let mask = Tensor::ones(&[cfg.ny, cfg.nx]);
        let mut trainer = Trainer::new(model, mask, TrainConfig::default());

        let snaps = synthetic_snaps(10, 8, 8, 4);
        let store = Arc::new(SnapshotStore::build(&snaps));
        // Episode start 900 is out of range: the single prefetch worker
        // panics there, losing that episode and the undelivered one after.
        let loader = DataLoader::new(
            store,
            vec![0, 1, 900, 2],
            2,
            NormStats::identity(),
            EncodeConfig::default(),
            LoaderConfig {
                prefetch_workers: 1,
                prefetch_factor: 4,
                batch_size: 1,
                shuffle_seed: None,
                ..Default::default()
            },
        );
        let dropped_metric = cobs::counter!("train.dropped_episodes");
        let dropped_before = dropped_metric.get();
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the worker panic
        let stats = trainer.train_epoch(&loader, 0);
        std::panic::set_hook(prev_hook);
        assert_eq!(stats.dropped_episodes, 2, "crashed + undelivered");
        assert_eq!(stats.instances, 2, "surviving episodes still train");
        assert_eq!(
            dropped_metric.get() - dropped_before,
            2,
            "drops must surface in the global metrics registry"
        );

        // A healthy epoch reports zero drops.
        let healthy = DataLoader::new(
            Arc::new(SnapshotStore::build(&synthetic_snaps(10, 8, 8, 4))),
            vec![0, 1, 2],
            2,
            NormStats::identity(),
            EncodeConfig::default(),
            LoaderConfig {
                prefetch_workers: 1,
                batch_size: 1,
                shuffle_seed: None,
                ..Default::default()
            },
        );
        let stats = trainer.train_epoch(&healthy, 1);
        assert_eq!(stats.dropped_episodes, 0);
        assert_eq!(stats.instances, 3);
    }

    #[test]
    fn grad_accumulation_takes_fewer_optimizer_steps() {
        use crate::loader::LoaderConfig;
        use crate::store::SnapshotStore;
        use std::sync::Arc;

        let cfg = SwinConfig::tiny(8, 8, 4, 2);
        let mk = |accum_steps: usize| {
            let model = SwinSurrogate::new(cfg.clone(), 0);
            let mask = Tensor::ones(&[cfg.ny, cfg.nx]);
            Trainer::new(
                model,
                mask,
                TrainConfig {
                    accum_steps,
                    ..Default::default()
                },
            )
        };
        let loader = || {
            DataLoader::new(
                Arc::new(SnapshotStore::build(&synthetic_snaps(10, 8, 8, 4))),
                vec![0, 1, 2, 3],
                2,
                NormStats::identity(),
                EncodeConfig::default(),
                LoaderConfig {
                    prefetch_workers: 0,
                    batch_size: 1,
                    shuffle_seed: None,
                    ..Default::default()
                },
            )
        };
        let mut plain = mk(1);
        plain.train_epoch(&loader(), 0);
        assert_eq!(plain.opt.t(), 4, "one update per micro-batch");
        let mut accum = mk(2);
        let stats = accum.train_epoch(&loader(), 0);
        assert_eq!(accum.opt.t(), 2, "one update per 2 accumulated batches");
        assert_eq!(stats.instances, 4);
        // A 3-batch tail (4 micro-batches, accum 3) still flushes.
        let mut tail = mk(3);
        tail.train_epoch(&loader(), 0);
        assert_eq!(tail.opt.t(), 2, "3 accumulated + 1 tail flush");
    }

    fn probe_all(t: &Trainer) -> Vec<u32> {
        t.opt
            .params()
            .iter()
            .flat_map(|p| {
                p.value()
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn data_parallel_single_worker_matches_serial_stacked_step() {
        // Four episodes (power of two, so the f64 weight/average round-trip
        // is exact), one worker, per-worker batch 4: the data-parallel epoch
        // must be bitwise-identical to one serial step on the stacked batch.
        let cfg = SwinConfig::tiny(8, 8, 4, 2);
        let eps: Vec<Episode> = (0..4)
            .map(|i| {
                let snaps = synthetic_snaps(cfg.t_out + 1 + i, cfg.ny, cfg.nx, cfg.nz);
                encode_episode(
                    &snaps[i..],
                    &NormStats::identity(),
                    &EncodeConfig::default(),
                )
            })
            .collect();
        let mask = Tensor::ones(&[cfg.ny, cfg.nx]);

        let mut serial = Trainer::new(
            SwinSurrogate::new(cfg.clone(), 0),
            mask.clone(),
            TrainConfig::default(),
        );
        serial.step(&crate::dataset::stack_episodes(&eps));

        let mut dp = Trainer::new(
            SwinSurrogate::new(cfg.clone(), 0),
            mask.clone(),
            TrainConfig::default(),
        );
        let stats = dp.train_epoch_data_parallel(&eps, 1, 4);
        assert_eq!(stats.instances, 4);
        assert_eq!(
            probe_all(&serial),
            probe_all(&dp),
            "W=1 data-parallel must equal the serial stacked step bitwise"
        );

        // And a given worker count must be deterministic run-to-run.
        let mut dp2 = Trainer::new(
            SwinSurrogate::new(cfg.clone(), 0),
            mask,
            TrainConfig::default(),
        );
        dp2.train_epoch_data_parallel(&eps, 1, 4);
        assert_eq!(probe_all(&dp), probe_all(&dp2));
    }

    #[test]
    fn data_parallel_multi_worker_trains_and_is_deterministic() {
        let cfg = SwinConfig::tiny(8, 8, 4, 2);
        let eps: Vec<Episode> = (0..5)
            .map(|i| {
                let snaps = synthetic_snaps(cfg.t_out + 1 + i, cfg.ny, cfg.nx, cfg.nz);
                encode_episode(
                    &snaps[i..],
                    &NormStats::identity(),
                    &EncodeConfig::default(),
                )
            })
            .collect();
        let mask = Tensor::ones(&[cfg.ny, cfg.nx]);
        let mut a = Trainer::new(
            SwinSurrogate::new(cfg.clone(), 0),
            mask.clone(),
            TrainConfig::default(),
        );
        // Uneven shares: 5 episodes over 2 workers (3 + 2), micro-batch 2.
        let s = a.train_epoch_data_parallel(&eps, 2, 2);
        assert_eq!(s.instances, 5);
        assert!(s.mean_loss.is_finite());
        let mut b = Trainer::new(
            SwinSurrogate::new(cfg.clone(), 0),
            mask,
            TrainConfig::default(),
        );
        b.train_epoch_data_parallel(&eps, 2, 2);
        assert_eq!(
            probe_all(&a),
            probe_all(&b),
            "same worker count must give bitwise-identical weights"
        );
    }

    #[test]
    fn checkpoint_resume_is_bitwise_identical() {
        use crate::checkpoint::TrainCheckpoint;

        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        for _ in 0..3 {
            trainer.step(&ep);
        }
        // Serialize mid-run, then keep training the original.
        let bytes = trainer.save_checkpoint(11).to_bytes();
        for _ in 0..3 {
            trainer.step(&ep);
        }
        let finished = probe_all(&trainer);

        // A fresh trainer (different init seed — restore must overwrite
        // everything) resumed from the byte stream must land on exactly
        // the same weights.
        let model = SwinSurrogate::new(cfg.clone(), 99);
        let mask = Tensor::ones(&[cfg.ny, cfg.nx]);
        let mut resumed = Trainer::new(model, mask, TrainConfig::default());
        let ck = TrainCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(resumed.restore_checkpoint(&ck), 11);
        assert_eq!(resumed.opt.t(), 3, "Adam step counter restored");
        for _ in 0..3 {
            resumed.step(&ep);
        }
        assert_eq!(
            finished,
            probe_all(&resumed),
            "resume from checkpoint must be bitwise-identical"
        );
    }

    #[test]
    fn max_batch_grows_with_checkpointing() {
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        // Probe the resident footprint at batch 1 without checkpointing,
        // then set the budget between the plain and checkpointed needs.
        let plain1 = {
            let mut g = Graph::new();
            g.training = true;
            let x3 = g.constant(ep.x3d.clone());
            let x2 = g.constant(ep.x2d.clone());
            let (p3, p2) = trainer.model.forward(&mut g, x3, x2);
            let _ = episode_loss(&mut g, p3, p2, &ep.target3, &ep.target2, &trainer.mask);
            g.meter().current
        };
        let budget = plain1 + plain1 / 2; // fits 1 plain batch, not 2
        let b_plain = trainer.max_batch_for_budget(&ep, budget, 4);
        trainer.set_checkpoint(CheckpointPolicy::DiscardWMsa);
        let b_ck = trainer.max_batch_for_budget(&ep, budget, 4);
        assert!(b_plain >= 1);
        assert!(
            b_ck > b_plain,
            "checkpointing must admit a larger batch: {b_ck} !> {b_plain}"
        );
    }
}
