//! Training loop: Adam over the masked episode loss, activation-memory
//! budgeting, and throughput instrumentation (paper §III-D).

use std::time::Instant;

use csurrogate::{episode_loss, CheckpointPolicy, SwinSurrogate};
use ctensor::prelude::*;

use crate::dataset::Episode;
use crate::loader::DataLoader;

/// Trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub lr: f32,
    pub grad_clip: f32,
    /// Activation-memory budget in bytes: the trainer refuses batches
    /// whose metered forward peak exceeds it (the paper's 80 GB A100
    /// ceiling that forces batch 1 without checkpointing).
    pub memory_budget: Option<usize>,
    /// Tensor compute backend pinned for every step (forward, backward
    /// closures, and optimizer updates all run under it).
    pub backend: BackendChoice,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            grad_clip: 1.0,
            memory_budget: None,
            backend: BackendChoice::default(),
        }
    }
}

/// Result of one optimizer step.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    pub loss: f32,
    /// Peak activation bytes metered on the tape (incl. checkpoint
    /// transients).
    pub peak_activation_bytes: usize,
    /// Bytes resident on the tape at the end of the forward pass.
    pub resident_activation_bytes: usize,
    pub wall_seconds: f64,
    pub instances: usize,
}

/// Aggregate statistics for an epoch (or fixed step budget).
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochStats {
    pub mean_loss: f32,
    pub instances: usize,
    pub wall_seconds: f64,
    pub instances_per_sec: f64,
    pub peak_activation_bytes: usize,
    /// Episodes lost to dead prefetch workers *during this epoch* — a
    /// non-zero value means the loader skipped instances instead of
    /// crashing, and the epoch trained on less data than scheduled.
    pub dropped_episodes: usize,
}

/// Supervised trainer for the Swin surrogate.
pub struct Trainer {
    pub model: SwinSurrogate,
    pub opt: Adam,
    pub cfg: TrainConfig,
    /// Land/sea mask `(ny, nx)`.
    pub mask: Tensor,
}

impl Trainer {
    pub fn new(model: SwinSurrogate, mask: Tensor, cfg: TrainConfig) -> Self {
        let params = model.params();
        let lr = cfg.lr;
        Self {
            model,
            opt: Adam::new(params, lr),
            cfg,
            mask,
        }
    }

    /// The backend a step runs under: the trainer's own choice, or — when
    /// that is `Auto` — the model's pinned backend, so a model built with
    /// `SwinConfig::with_backend(Scalar)` also bisects its gradient path.
    fn step_backend(&self) -> std::sync::Arc<dyn ctensor::backend::Backend> {
        match self.cfg.backend {
            BackendChoice::Auto => self.model.cfg.backend.resolve(),
            pinned => pinned.resolve(),
        }
    }

    /// One forward/backward/update on a (possibly batched) episode.
    pub fn step(&mut self, batch: &Episode) -> StepStats {
        // Pin the backend for the whole step — the model's own forward
        // scope ends with forward, but backward closures (including
        // checkpoint replays) and the optimizer update must run on the
        // same kernels.
        let _backend = ctensor::backend::scoped(self.step_backend());
        let t0 = Instant::now();
        let instances = batch.x3d.shape()[0];
        let mut g = Graph::new();
        g.training = true;
        let x3 = g.constant(batch.x3d.clone());
        let x2 = g.constant(batch.x2d.clone());
        let (p3, p2) = self.model.forward(&mut g, x3, x2);
        let loss = episode_loss(&mut g, p3, p2, &batch.target3, &batch.target2, &self.mask);
        let loss_v = g.value(loss).item();
        let resident = g.meter().current;
        if let Some(budget) = self.cfg.memory_budget {
            assert!(
                resident <= budget,
                "activation memory {resident} exceeds budget {budget}; \
                 lower the batch size or enable checkpointing"
            );
        }
        g.backward(loss);
        clip_grad_norm(self.opt.params(), self.cfg.grad_clip);
        self.opt.step();
        StepStats {
            loss: loss_v,
            peak_activation_bytes: g.meter().peak,
            resident_activation_bytes: resident,
            wall_seconds: t0.elapsed().as_secs_f64(),
            instances,
        }
    }

    /// Evaluation loss (no gradient, no update).
    pub fn eval(&self, batch: &Episode) -> f32 {
        let _backend = ctensor::backend::scoped(self.step_backend());
        let mut g = Graph::inference();
        let x3 = g.constant(batch.x3d.clone());
        let x2 = g.constant(batch.x2d.clone());
        let (p3, p2) = self.model.forward(&mut g, x3, x2);
        let loss = episode_loss(&mut g, p3, p2, &batch.target3, &batch.target2, &self.mask);
        g.value(loss).item()
    }

    /// Run one epoch from a loader; returns aggregate stats.
    ///
    /// Episodes silently skipped by the loader (a prefetch worker died
    /// mid-epoch) are surfaced in [`EpochStats::dropped_episodes`] and
    /// warned about on stderr — training on partial data must be loud.
    pub fn train_epoch(&mut self, loader: &DataLoader, epoch: u64) -> EpochStats {
        let t0 = Instant::now();
        let dropped_before = loader.dropped_episodes();
        let mut total_loss = 0.0f64;
        let mut instances = 0usize;
        let mut batches = 0usize;
        let mut peak = 0usize;
        for batch in loader.epoch(epoch) {
            let s = self.step(&batch);
            total_loss += s.loss as f64;
            instances += s.instances;
            batches += 1;
            peak = peak.max(s.peak_activation_bytes);
        }
        let wall = t0.elapsed().as_secs_f64();
        let dropped = loader.dropped_episodes() - dropped_before;
        if dropped > 0 {
            eprintln!(
                "[trainer] WARNING: epoch {epoch} dropped {dropped} episode(s) — \
                 prefetch worker(s) died; trained on {instances} of {} instances",
                loader.len()
            );
        }
        EpochStats {
            mean_loss: (total_loss / batches.max(1) as f64) as f32,
            instances,
            wall_seconds: wall,
            instances_per_sec: instances as f64 / wall.max(1e-9),
            peak_activation_bytes: peak,
            dropped_episodes: dropped,
        }
    }

    /// Largest batch size whose *resident* activation footprint fits the
    /// budget, probed by metering forwards on stacked copies of `sample`
    /// (the paper: 1 without checkpointing, 2 with, on an 80 GB A100).
    pub fn max_batch_for_budget(&self, sample: &Episode, budget: usize, cap: usize) -> usize {
        let mut best = 0;
        for b in 1..=cap {
            let batch = crate::dataset::stack_episodes(&vec![sample.clone(); b]);
            let mut g = Graph::new();
            g.training = true;
            let x3 = g.constant(batch.x3d.clone());
            let x2 = g.constant(batch.x2d.clone());
            let (p3, p2) = self.model.forward(&mut g, x3, x2);
            let _ = episode_loss(&mut g, p3, p2, &batch.target3, &batch.target2, &self.mask);
            if g.meter().current <= budget {
                best = b;
            } else {
                break;
            }
        }
        best
    }

    /// Set the checkpoint policy (affects subsequent steps).
    pub fn set_checkpoint(&mut self, policy: CheckpointPolicy) {
        self.model.checkpoint = policy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{encode_episode, EncodeConfig};
    use crate::normalize::NormStats;
    use cocean::Snapshot;
    use csurrogate::SwinConfig;

    fn synthetic_snaps(n: usize, ny: usize, nx: usize, nz: usize) -> Vec<Snapshot> {
        (0..n)
            .map(|t| {
                let phase = t as f32 * 0.4;
                let mut s = Snapshot {
                    time: t as f64 * 1800.0,
                    nz,
                    ny,
                    nx,
                    zeta: vec![0.0; ny * nx],
                    u: vec![0.0; nz * ny * nx],
                    v: vec![0.0; nz * ny * nx],
                    w: vec![0.0; nz * ny * nx],
                };
                for j in 0..ny {
                    for i in 0..nx {
                        let x = i as f32 * 0.8;
                        s.zeta[j * nx + i] = 0.3 * (phase - x).sin();
                        for k in 0..nz {
                            let idx = s.idx3(k, j, i);
                            s.u[idx] = 0.1 * (phase - x).cos();
                        }
                    }
                }
                s
            })
            .collect()
    }

    fn episode(cfg: &SwinConfig) -> Episode {
        let snaps = synthetic_snaps(cfg.t_out + 1, cfg.ny, cfg.nx, cfg.nz);
        encode_episode(&snaps, &NormStats::identity(), &EncodeConfig::default())
    }

    fn tiny_trainer() -> (SwinConfig, Trainer) {
        let cfg = SwinConfig::tiny(8, 8, 4, 2);
        let model = SwinSurrogate::new(cfg.clone(), 0);
        let mask = Tensor::ones(&[cfg.ny, cfg.nx]);
        let trainer = Trainer::new(model, mask, TrainConfig::default());
        (cfg, trainer)
    }

    #[test]
    fn loss_decreases_over_steps() {
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        let first = trainer.step(&ep).loss;
        let mut last = first;
        for _ in 0..10 {
            last = trainer.step(&ep).loss;
        }
        assert!(
            last < first,
            "training on one episode must reduce its loss: {first} -> {last}"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn eval_is_deterministic_and_improves_with_training() {
        // (eval uses BatchNorm running stats, so it differs from the
        // train-mode loss by design — but it must be repeatable and must
        // drop after fitting.)
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        for _ in 0..3 {
            trainer.step(&ep); // populate running stats + fit a little
        }
        let before = trainer.eval(&ep);
        assert_eq!(before, trainer.eval(&ep), "eval must be deterministic");
        for _ in 0..15 {
            trainer.step(&ep);
        }
        let after = trainer.eval(&ep);
        assert!(
            after < before,
            "eval loss must improve with training: {before} -> {after}"
        );
    }

    #[test]
    fn checkpointing_reduces_resident_bytes() {
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        let plain = trainer.step(&ep);
        trainer.set_checkpoint(CheckpointPolicy::DiscardWMsa);
        let ck = trainer.step(&ep);
        assert!(
            ck.resident_activation_bytes < plain.resident_activation_bytes,
            "{} !< {}",
            ck.resident_activation_bytes,
            plain.resident_activation_bytes
        );
    }

    #[test]
    fn memory_budget_enforced() {
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        trainer.cfg.memory_budget = Some(1); // absurdly small
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            trainer.step(&ep);
        }));
        assert!(r.is_err(), "budget violation must be detected");
    }

    #[test]
    fn train_epoch_surfaces_dropped_episodes() {
        use crate::loader::LoaderConfig;
        use crate::store::SnapshotStore;
        use std::sync::Arc;

        let cfg = SwinConfig::tiny(8, 8, 4, 2);
        let model = SwinSurrogate::new(cfg.clone(), 0);
        let mask = Tensor::ones(&[cfg.ny, cfg.nx]);
        let mut trainer = Trainer::new(model, mask, TrainConfig::default());

        let snaps = synthetic_snaps(10, 8, 8, 4);
        let store = Arc::new(SnapshotStore::build(&snaps));
        // Episode start 900 is out of range: the single prefetch worker
        // panics there, losing that episode and the undelivered one after.
        let loader = DataLoader::new(
            store,
            vec![0, 1, 900, 2],
            2,
            NormStats::identity(),
            EncodeConfig::default(),
            LoaderConfig {
                prefetch_workers: 1,
                prefetch_factor: 4,
                batch_size: 1,
                shuffle_seed: None,
                ..Default::default()
            },
        );
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the worker panic
        let stats = trainer.train_epoch(&loader, 0);
        std::panic::set_hook(prev_hook);
        assert_eq!(stats.dropped_episodes, 2, "crashed + undelivered");
        assert_eq!(stats.instances, 2, "surviving episodes still train");

        // A healthy epoch reports zero drops.
        let healthy = DataLoader::new(
            Arc::new(SnapshotStore::build(&synthetic_snaps(10, 8, 8, 4))),
            vec![0, 1, 2],
            2,
            NormStats::identity(),
            EncodeConfig::default(),
            LoaderConfig {
                prefetch_workers: 1,
                batch_size: 1,
                shuffle_seed: None,
                ..Default::default()
            },
        );
        let stats = trainer.train_epoch(&healthy, 1);
        assert_eq!(stats.dropped_episodes, 0);
        assert_eq!(stats.instances, 3);
    }

    #[test]
    fn max_batch_grows_with_checkpointing() {
        let (cfg, mut trainer) = tiny_trainer();
        let ep = episode(&cfg);
        // Probe the resident footprint at batch 1 without checkpointing,
        // then set the budget between the plain and checkpointed needs.
        let plain1 = {
            let mut g = Graph::new();
            g.training = true;
            let x3 = g.constant(ep.x3d.clone());
            let x2 = g.constant(ep.x2d.clone());
            let (p3, p2) = trainer.model.forward(&mut g, x3, x2);
            let _ = episode_loss(&mut g, p3, p2, &ep.target3, &ep.target2, &trainer.mask);
            g.meter().current
        };
        let budget = plain1 + plain1 / 2; // fits 1 plain batch, not 2
        let b_plain = trainer.max_batch_for_budget(&ep, budget, 4);
        trainer.set_checkpoint(CheckpointPolicy::DiscardWMsa);
        let b_ck = trainer.max_batch_for_budget(&ep, budget, 4);
        assert!(b_plain >= 1);
        assert!(
            b_ck > b_plain,
            "checkpointing must admit a larger batch: {b_ck} !> {b_plain}"
        );
    }
}
