//! FP16 snapshot archive — the training-data store.
//!
//! The paper's decade-long ROMS archive is FP64 on disk, compressed to
//! FP16 for training (2.6 TB). This store keeps snapshots as framed `f16`
//! payloads in one contiguous buffer ([`bytes::Bytes`]) and decompresses
//! on fetch; fetching is deliberately *work* (f16→f32 widening of every
//! value), standing in for the SSD→RAM leg whose cost the loader
//! optimizations of §III-D hide. An optional artificial latency models a
//! slower storage tier.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cocean::Snapshot;
use ctensor::f16::F16;

/// Compressed snapshot archive.
pub struct SnapshotStore {
    /// Framed payloads.
    data: Bytes,
    /// Byte offset of each snapshot.
    offsets: Vec<usize>,
    /// Extra per-fetch latency in microseconds (0 = pure decompression).
    pub fetch_latency_us: u64,
    dims: (usize, usize, usize),
}

impl SnapshotStore {
    /// Compress an archive of snapshots.
    pub fn build(snaps: &[Snapshot]) -> Self {
        assert!(!snaps.is_empty());
        let (nz, ny, nx) = (snaps[0].nz, snaps[0].ny, snaps[0].nx);
        let mut buf = BytesMut::new();
        let mut offsets = Vec::with_capacity(snaps.len());
        for s in snaps {
            assert_eq!((s.nz, s.ny, s.nx), (nz, ny, nx), "mixed mesh sizes");
            offsets.push(buf.len());
            buf.put_f64(s.time);
            for field in [&s.zeta, &s.u, &s.v, &s.w] {
                for &v in field.iter() {
                    buf.put_u16(F16::from_f32(v).0);
                }
            }
        }
        Self {
            data: buf.freeze(),
            offsets,
            fetch_latency_us: 0,
            dims: (nz, ny, nx),
        }
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Compressed size in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len()
    }

    /// Mesh dims `(nz, ny, nx)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Decompress `len` consecutive snapshots starting at `start` — the
    /// episode-window read for building forecast requests from a shared
    /// archive (fetching is `&self`, so concurrent readers behind an
    /// `Arc<SnapshotStore>` need no locking). Returns `None` when the
    /// range runs off the archive instead of panicking mid-request.
    pub fn fetch_window(&self, start: usize, len: usize) -> Option<Vec<Snapshot>> {
        let end = start.checked_add(len)?;
        if end > self.offsets.len() {
            return None;
        }
        Some((start..end).map(|i| self.fetch(i)).collect())
    }

    /// Decompress snapshot `idx` (f16 → f32 widening of every value).
    pub fn fetch(&self, idx: usize) -> Snapshot {
        if self.fetch_latency_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.fetch_latency_us));
        }
        let (nz, ny, nx) = self.dims;
        let n2 = ny * nx;
        let n3 = nz * n2;
        let mut cur = &self.data[self.offsets[idx]..];
        let time = cur.get_f64();
        let mut read = |n: usize| -> Vec<f32> {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(F16(cur.get_u16()).to_f32());
            }
            v
        };
        let zeta = read(n2);
        let u = read(n3);
        let v = read(n3);
        let w = read(n3);
        Snapshot {
            time,
            nz,
            ny,
            nx,
            zeta,
            u,
            v,
            w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t: f64) -> Snapshot {
        let (nz, ny, nx) = (2, 4, 3);
        Snapshot {
            time: t,
            nz,
            ny,
            nx,
            zeta: (0..ny * nx).map(|i| (i as f32 - 5.0) * 0.03).collect(),
            u: (0..nz * ny * nx).map(|i| (i as f32) * 0.01 - 0.1).collect(),
            v: (0..nz * ny * nx).map(|i| (i as f32) * -0.005).collect(),
            w: (0..nz * ny * nx).map(|i| (i as f32) * 1e-5).collect(),
        }
    }

    #[test]
    fn roundtrip_within_f16_precision() {
        let snaps: Vec<Snapshot> = (0..3).map(|t| snap(t as f64 * 100.0)).collect();
        let store = SnapshotStore::build(&snaps);
        assert_eq!(store.len(), 3);
        for (i, orig) in snaps.iter().enumerate() {
            let got = store.fetch(i);
            assert_eq!(got.time, orig.time);
            for (a, b) in got.u.iter().zip(&orig.u) {
                assert!((a - b).abs() <= b.abs() / 1000.0 + 1e-4, "{a} vs {b}");
            }
            for (a, b) in got.w.iter().zip(&orig.w) {
                assert!((a - b).abs() <= b.abs() / 1000.0 + 1e-6);
            }
        }
    }

    #[test]
    fn compression_halves_f32_size() {
        let snaps: Vec<Snapshot> = (0..4).map(|t| snap(t as f64)).collect();
        let store = SnapshotStore::build(&snaps);
        let f32_bytes: usize = snaps.iter().map(|s| s.nbytes()).sum();
        // Header per snapshot = 8 bytes; payload exactly half.
        assert_eq!(store.nbytes(), f32_bytes / 2 + 8 * snaps.len());
    }

    #[test]
    fn fetch_window_bounds_checked() {
        let snaps: Vec<Snapshot> = (0..5).map(|t| snap(t as f64)).collect();
        let store = SnapshotStore::build(&snaps);
        let w = store.fetch_window(1, 3).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].time, 1.0);
        assert_eq!(w[2].time, 3.0);
        assert!(store.fetch_window(3, 3).is_none());
        assert!(store.fetch_window(5, 1).is_none());
        assert!(store.fetch_window(usize::MAX, 2).is_none(), "no overflow");
    }

    #[test]
    fn fetch_out_of_order() {
        let snaps: Vec<Snapshot> = (0..5).map(|t| snap(t as f64)).collect();
        let store = SnapshotStore::build(&snaps);
        assert_eq!(store.fetch(4).time, 4.0);
        assert_eq!(store.fetch(0).time, 0.0);
        assert_eq!(store.fetch(2).time, 2.0);
    }
}
