//! Episode construction: sliding windows over the simulation archive,
//! initial/boundary-condition encoding, and target extraction
//! (paper §III-A/B).
//!
//! An *episode* is `T+1` consecutive snapshots: the initial condition plus
//! `T` forecast steps. The model input carries the IC as a full frame and
//! the `T` future frames with only their lateral boundary ring populated;
//! the target is the `T` full interior frames.

use cocean::Snapshot;
use ctensor::prelude::*;

use crate::normalize::NormStats;

/// Sliding-window episode indexing (paper: window 24, stride 6 over the
/// training year; non-overlapping over the test year).
#[derive(Clone, Debug)]
pub struct WindowSpec {
    /// Forecast steps per episode (T).
    pub t_out: usize,
    /// Start-to-start stride in snapshots.
    pub stride: usize,
}

impl WindowSpec {
    /// Paper training split: stride 6.
    pub fn train(t_out: usize) -> Self {
        Self { t_out, stride: 6 }
    }

    /// Paper test split: non-overlapping windows.
    pub fn test(t_out: usize) -> Self {
        Self {
            t_out,
            stride: t_out + 1,
        }
    }

    /// Episode start indices available in an archive of `n` snapshots.
    pub fn starts(&self, n: usize) -> Vec<usize> {
        let len = self.t_out + 1;
        if n < len {
            return Vec::new();
        }
        (0..=(n - len)).step_by(self.stride).collect()
    }
}

/// One training/evaluation instance as dense tensors.
#[derive(Clone, Debug)]
pub struct Episode {
    /// `(1, 3, ny, nx, nz, T+1)` — IC frame + boundary frames (normalized).
    pub x3d: Tensor,
    /// `(1, 1, ny, nx, T+1)`.
    pub x2d: Tensor,
    /// `(1, 3, ny, nx, nz, T)` normalized targets.
    pub target3: Tensor,
    /// `(1, 1, ny, nx, T)`.
    pub target2: Tensor,
    /// Model time of the initial condition.
    pub t0: f64,
}

impl Episode {
    /// Payload bytes (Table II "training sample" accounting).
    pub fn nbytes(&self) -> usize {
        (self.x3d.numel() + self.x2d.numel() + self.target3.numel() + self.target2.numel()) * 4
    }
}

/// Configuration for episode encoding.
#[derive(Clone, Debug)]
pub struct EncodeConfig {
    /// Width (cells) of the lateral boundary ring carried by future frames.
    pub boundary_ring: usize,
}

impl Default for EncodeConfig {
    fn default() -> Self {
        Self { boundary_ring: 2 }
    }
}

/// Is cell (j, i) on the lateral boundary ring?
#[inline]
pub fn on_ring(j: usize, i: usize, ny: usize, nx: usize, ring: usize) -> bool {
    j < ring || i < ring || j >= ny - ring || i >= nx - ring
}

/// Encode `T+1` consecutive snapshots into one episode.
pub fn encode_episode(snaps: &[Snapshot], stats: &NormStats, cfg: &EncodeConfig) -> Episode {
    assert!(snaps.len() >= 2, "episode needs at least IC + 1 step");
    let t_out = snaps.len() - 1;
    let (nz, ny, nx) = (snaps[0].nz, snaps[0].ny, snaps[0].nx);
    let t_in = t_out + 1;
    let ring = cfg.boundary_ring;

    let mut x3d = vec![0.0f32; 3 * ny * nx * nz * t_in];
    let mut x2d = vec![0.0f32; ny * nx * t_in];
    let mut target3 = vec![0.0f32; 3 * ny * nx * nz * t_out];
    let mut target2 = vec![0.0f32; ny * nx * t_out];

    // Layout helpers for (C, H, W, D, T) / (C, H, W, T) row-major.
    let i3 = |c: usize, j: usize, i: usize, k: usize, t: usize| {
        (((c * ny + j) * nx + i) * nz + k) * t_in + t
    };
    let i2 = |j: usize, i: usize, t: usize| (j * nx + i) * t_in + t;
    let o3 = |c: usize, j: usize, i: usize, k: usize, t: usize| {
        (((c * ny + j) * nx + i) * nz + k) * t_out + t
    };
    let o2 = |j: usize, i: usize, t: usize| (j * nx + i) * t_out + t;

    for (t, snap) in snaps.iter().enumerate() {
        let full = t == 0;
        for j in 0..ny {
            for i in 0..nx {
                let carry = full || on_ring(j, i, ny, nx, ring);
                for k in 0..nz {
                    let s3 = snap.idx3(k, j, i);
                    let vals = [
                        stats.normalize(0, snap.u[s3]),
                        stats.normalize(1, snap.v[s3]),
                        stats.normalize(2, snap.w[s3]),
                    ];
                    if carry {
                        for (c, &v) in vals.iter().enumerate() {
                            x3d[i3(c, j, i, k, t)] = v;
                        }
                    }
                    if t > 0 {
                        for (c, &v) in vals.iter().enumerate() {
                            target3[o3(c, j, i, k, t - 1)] = v;
                        }
                    }
                }
                let z = stats.normalize(3, snap.zeta[snap.idx2(j, i)]);
                if carry {
                    x2d[i2(j, i, t)] = z;
                }
                if t > 0 {
                    target2[o2(j, i, t - 1)] = z;
                }
            }
        }
    }

    Episode {
        x3d: Tensor::from_vec(x3d, &[1, 3, ny, nx, nz, t_in]),
        x2d: Tensor::from_vec(x2d, &[1, 1, ny, nx, t_in]),
        target3: Tensor::from_vec(target3, &[1, 3, ny, nx, nz, t_out]),
        target2: Tensor::from_vec(target2, &[1, 1, ny, nx, t_out]),
        t0: snaps[0].time,
    }
}

/// Stack per-sample episodes into one batched episode along axis 0.
pub fn stack_episodes(eps: &[Episode]) -> Episode {
    assert!(!eps.is_empty());
    let cat = |f: fn(&Episode) -> &Tensor| {
        let parts: Vec<&Tensor> = eps.iter().map(f).collect();
        Tensor::concat(&parts, 0)
    };
    Episode {
        x3d: cat(|e| &e.x3d),
        x2d: cat(|e| &e.x2d),
        target3: cat(|e| &e.target3),
        target2: cat(|e| &e.target2),
        t0: eps[0].t0,
    }
}

/// Decode a model prediction `(1,3,ny,nx,nz,T)/(1,1,ny,nx,T)` (normalized)
/// back into physical-unit snapshots, one per forecast step.
pub fn decode_prediction(
    pred3: &Tensor,
    pred2: &Tensor,
    stats: &NormStats,
    t0: f64,
    dt: f64,
) -> Vec<Snapshot> {
    let s3 = pred3.shape();
    assert_eq!(s3[0], 1, "decode one sample at a time");
    decode_sample(pred3, pred2, 0, stats, t0, dt)
}

/// Decode sample `b` of a batched model prediction
/// `(B,3,ny,nx,nz,T)/(B,1,ny,nx,T)` back into physical-unit snapshots.
pub fn decode_sample(
    pred3: &Tensor,
    pred2: &Tensor,
    b: usize,
    stats: &NormStats,
    t0: f64,
    dt: f64,
) -> Vec<Snapshot> {
    let s3 = pred3.shape().to_vec();
    assert!(b < s3[0], "sample {b} out of batch {}", s3[0]);
    let (ny, nx, nz, t_out) = (s3[2], s3[3], s3[4], s3[5]);
    let mut out = Vec::with_capacity(t_out);
    for t in 0..t_out {
        let mut snap = Snapshot {
            time: t0 + (t + 1) as f64 * dt,
            nz,
            ny,
            nx,
            zeta: vec![0.0; ny * nx],
            u: vec![0.0; nz * ny * nx],
            v: vec![0.0; nz * ny * nx],
            w: vec![0.0; nz * ny * nx],
        };
        for j in 0..ny {
            for i in 0..nx {
                for k in 0..nz {
                    let dst = snap.idx3(k, j, i);
                    snap.u[dst] = stats.denormalize(0, pred3.at(&[b, 0, j, i, k, t]));
                    snap.v[dst] = stats.denormalize(1, pred3.at(&[b, 1, j, i, k, t]));
                    snap.w[dst] = stats.denormalize(2, pred3.at(&[b, 2, j, i, k, t]));
                }
                snap.zeta[j * nx + i] = stats.denormalize(3, pred2.at(&[b, 0, j, i, t]));
            }
        }
        out.push(snap);
    }
    out
}

/// Decode every sample of a batched prediction; `t0s[b]` supplies each
/// episode's initial-condition time.
pub fn decode_prediction_batch(
    pred3: &Tensor,
    pred2: &Tensor,
    stats: &NormStats,
    t0s: &[f64],
    dt: f64,
) -> Vec<Vec<Snapshot>> {
    assert_eq!(
        pred3.shape()[0],
        t0s.len(),
        "one t0 per batched sample required"
    );
    t0s.iter()
        .enumerate()
        .map(|(b, &t0)| decode_sample(pred3, pred2, b, stats, t0, dt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t: f64, ny: usize, nx: usize, nz: usize, fill: f32) -> Snapshot {
        Snapshot {
            time: t,
            nz,
            ny,
            nx,
            zeta: vec![fill; ny * nx],
            u: vec![fill; nz * ny * nx],
            v: vec![fill * 2.0; nz * ny * nx],
            w: vec![fill * 3.0; nz * ny * nx],
        }
    }

    #[test]
    fn window_starts_paper_counts() {
        // Sliding window of 24 steps, stride 6: from n snapshots we get
        // floor((n - 25)/6) + 1 instances.
        let spec = WindowSpec::train(24);
        assert_eq!(spec.starts(25).len(), 1);
        assert_eq!(spec.starts(31).len(), 2);
        assert_eq!(spec.starts(24).len(), 0);
        // Test windows do not overlap.
        let t = WindowSpec::test(24);
        let starts = t.starts(100);
        for w in starts.windows(2) {
            assert!(w[1] - w[0] >= 25);
        }
    }

    #[test]
    fn episode_shapes() {
        let snaps: Vec<Snapshot> = (0..4).map(|t| snap(t as f64, 8, 6, 2, t as f32)).collect();
        let ep = encode_episode(&snaps, &NormStats::identity(), &EncodeConfig::default());
        assert_eq!(ep.x3d.shape(), &[1, 3, 8, 6, 2, 4]);
        assert_eq!(ep.x2d.shape(), &[1, 1, 8, 6, 4]);
        assert_eq!(ep.target3.shape(), &[1, 3, 8, 6, 2, 3]);
        assert_eq!(ep.target2.shape(), &[1, 1, 8, 6, 3]);
    }

    #[test]
    fn ic_full_future_frames_boundary_only() {
        let snaps: Vec<Snapshot> = (0..3).map(|t| snap(t as f64, 8, 8, 1, 1.0)).collect();
        let cfg = EncodeConfig { boundary_ring: 2 };
        let ep = encode_episode(&snaps, &NormStats::identity(), &cfg);
        // Frame 0: interior cell populated.
        assert_eq!(ep.x2d.at(&[0, 0, 4, 4, 0]), 1.0);
        // Frames 1..: interior zero, ring populated.
        assert_eq!(ep.x2d.at(&[0, 0, 4, 4, 1]), 0.0);
        assert_eq!(ep.x2d.at(&[0, 0, 0, 4, 1]), 1.0);
        assert_eq!(ep.x2d.at(&[0, 0, 4, 1, 2]), 1.0);
        assert_eq!(ep.x2d.at(&[0, 0, 7, 7, 2]), 1.0);
    }

    #[test]
    fn targets_are_future_interiors() {
        let snaps: Vec<Snapshot> = (0..3).map(|t| snap(t as f64, 8, 8, 1, t as f32)).collect();
        let ep = encode_episode(&snaps, &NormStats::identity(), &EncodeConfig::default());
        // target frame 0 = snapshot 1, frame 1 = snapshot 2.
        assert_eq!(ep.target2.at(&[0, 0, 4, 4, 0]), 1.0);
        assert_eq!(ep.target2.at(&[0, 0, 4, 4, 1]), 2.0);
        // u channel of target carries snapshot u.
        assert_eq!(ep.target3.at(&[0, 0, 4, 4, 0, 1]), 2.0);
        // w channel = 3×fill.
        assert_eq!(ep.target3.at(&[0, 2, 4, 4, 0, 1]), 6.0);
    }

    #[test]
    fn normalization_applied() {
        let snaps: Vec<Snapshot> = (0..2).map(|t| snap(t as f64, 6, 6, 1, 2.0)).collect();
        let stats = NormStats {
            mean: [1.0, 0.0, 0.0, 0.0],
            std: [2.0, 1.0, 1.0, 4.0],
        };
        let ep = encode_episode(&snaps, &stats, &EncodeConfig::default());
        // u = 2.0 → (2-1)/2 = 0.5 in the IC frame.
        assert_eq!(ep.x3d.at(&[0, 0, 3, 3, 0, 0]), 0.5);
        // ζ = 2.0 → 0.5 with std 4.
        assert_eq!(ep.x2d.at(&[0, 0, 3, 3, 0]), 0.5);
    }

    #[test]
    fn decode_inverts_encode_targets() {
        let snaps: Vec<Snapshot> = (0..3)
            .map(|t| snap(t as f64 * 10.0, 6, 6, 2, 1.5))
            .collect();
        let stats = NormStats {
            mean: [0.5, 0.0, -0.5, 0.1],
            std: [2.0, 3.0, 0.25, 1.5],
        };
        let ep = encode_episode(&snaps, &stats, &EncodeConfig::default());
        let decoded = decode_prediction(&ep.target3, &ep.target2, &stats, 0.0, 10.0);
        assert_eq!(decoded.len(), 2);
        for (d, orig) in decoded.iter().zip(&snaps[1..]) {
            for (a, b) in d.u.iter().zip(&orig.u) {
                assert!((a - b).abs() < 1e-5);
            }
            for (a, b) in d.zeta.iter().zip(&orig.zeta) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn stack_batches_episodes() {
        let snaps: Vec<Snapshot> = (0..3).map(|t| snap(t as f64, 6, 6, 1, 1.0)).collect();
        let ep = encode_episode(&snaps, &NormStats::identity(), &EncodeConfig::default());
        let batch = stack_episodes(&[ep.clone(), ep]);
        assert_eq!(batch.x3d.shape()[0], 2);
        assert_eq!(batch.target2.shape()[0], 2);
    }
}
