//! # coastal-pipeline
//!
//! The GPU-style training pipeline of the paper's §III-D, on CPU:
//!
//! - [`normalize`]: z-score statistics over the training year.
//! - [`dataset`]: sliding-window episode construction — full initial
//!   condition + boundary-ring future frames in, full interiors out.
//! - [`store`]: FP16-compressed snapshot archive (the 2.6 TB store,
//!   scaled), decompression-as-I/O.
//! - [`loader`]: prefetch workers, pinned staging-buffer pool, and
//!   deterministic batch ordering.
//! - [`trainer`]: batch-first Adam training with gradient accumulation,
//!   activation-memory budgeting, and throughput metering.
//! - [`checkpoint`]: full training-state snapshots (params, buffers, Adam
//!   moments) for bitwise-identical stop/resume.
//! - [`parallel`]: data-parallel replicas with synchronous gradient
//!   all-reduce (weak scaling, Fig. 10).

pub mod checkpoint;
pub mod dataset;
pub mod loader;
pub mod normalize;
pub mod parallel;
pub mod store;
pub mod trainer;

pub use checkpoint::TrainCheckpoint;
pub use dataset::{
    decode_prediction, decode_prediction_batch, decode_sample, encode_episode, stack_episodes,
    EncodeConfig, Episode, WindowSpec,
};
pub use loader::{DataLoader, LoaderConfig};
pub use normalize::NormStats;
pub use parallel::{train_data_parallel, ParallelConfig, ParallelStats};
pub use store::SnapshotStore;
pub use trainer::{EpochStats, StepStats, TrainConfig, Trainer};
