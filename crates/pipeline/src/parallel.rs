//! Data-parallel training across "GPUs" (worker threads), reproducing the
//! paper's multi-GPU scaling setup (§IV-G, Fig. 10): one model replica per
//! worker, synchronous gradient all-reduce every step, weak scaling with a
//! fixed per-worker batch.
//!
//! Replicas are constructed from the same seed and apply identical
//! averaged gradients with identical optimizer state, so they remain
//! bit-consistent without any parameter broadcast — asserted by tests.

use std::time::Instant;

use chpc::{run_parallel, Comm};
use csurrogate::{episode_loss, CheckpointPolicy, SwinConfig, SwinSurrogate};
use ctensor::prelude::*;

use crate::dataset::{stack_episodes, Episode};

/// Configuration for a data-parallel run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    pub model: SwinConfig,
    pub seed: u64,
    pub lr: f32,
    pub grad_clip: f32,
    pub checkpoint: CheckpointPolicy,
    /// Episodes per worker per step.
    pub per_worker_batch: usize,
    /// Optimizer steps to run.
    pub steps: usize,
}

/// Outcome of a data-parallel run.
#[derive(Clone, Debug)]
pub struct ParallelStats {
    pub workers: usize,
    /// Total instances processed across all workers.
    pub instances: usize,
    pub wall_seconds: f64,
    pub instances_per_sec: f64,
    pub final_loss: f32,
    /// First few weights of the final model (replica-consistency probe).
    pub weight_probe: Vec<f32>,
}

const TAG_GRAD: u64 = 5_000;

/// All-reduce (mean) a gradient vector across ranks via rank 0.
fn allreduce_mean(comm: &Comm, grad: Vec<f64>, round: u64) -> Vec<f64> {
    let p = comm.size();
    if p == 1 {
        return grad;
    }
    let tag = TAG_GRAD + round;
    if comm.rank() == 0 {
        let mut acc = grad;
        for src in 1..p {
            let other = comm.recv(src, tag);
            for (a, b) in acc.iter_mut().zip(&other) {
                *a += b;
            }
        }
        let inv = 1.0 / p as f64;
        for a in acc.iter_mut() {
            *a *= inv;
        }
        for dst in 1..p {
            comm.send(dst, tag, acc.clone());
        }
        acc
    } else {
        comm.send(0, tag, grad);
        comm.recv(0, tag)
    }
}

/// Train with `workers` data-parallel replicas over a shared episode set.
/// Worker `r` consumes episodes `(step * workers + r) * batch + k` modulo
/// the set, so the aggregate stream is deterministic.
pub fn train_data_parallel(
    cfg: &ParallelConfig,
    episodes: &[Episode],
    mask: &Tensor,
    workers: usize,
) -> ParallelStats {
    assert!(!episodes.is_empty());
    let t0 = Instant::now();
    let results = run_parallel(workers, |comm| {
        // Pin the model's configured backend for this replica's whole loop:
        // the model's own forward scope ends when forward returns, but loss,
        // backward (including checkpoint replays), and the optimizer update
        // must run on the same kernels.
        let _backend = ctensor::backend::scoped(cfg.model.backend.resolve());
        let rank = comm.rank();
        let model = SwinSurrogate::new(cfg.model.clone(), cfg.seed);
        let mut model = model;
        model.checkpoint = cfg.checkpoint;
        let params = model.params();
        let mut opt = Adam::new(params.clone(), cfg.lr);

        let mut last_loss = 0.0f32;
        for step in 0..cfg.steps {
            // Build this worker's batch.
            let base = (step * workers + rank) * cfg.per_worker_batch;
            let batch: Vec<Episode> = (0..cfg.per_worker_batch)
                .map(|k| episodes[(base + k) % episodes.len()].clone())
                .collect();
            let batch = stack_episodes(&batch);

            let mut g = Graph::new();
            g.training = true;
            let x3 = g.constant(batch.x3d.clone());
            let x2 = g.constant(batch.x2d.clone());
            let (p3, p2) = model.forward(&mut g, x3, x2);
            let loss = episode_loss(&mut g, p3, p2, &batch.target3, &batch.target2, mask);
            last_loss = g.value(loss).item();
            g.backward(loss);

            // Flatten all gradients, all-reduce, scatter back.
            let mut flat: Vec<f64> = Vec::new();
            let mut shapes = Vec::with_capacity(params.len());
            for p in &params {
                let gr = p.grad().unwrap_or_else(|| Tensor::zeros(p.value().shape()));
                shapes.push(gr.shape().to_vec());
                flat.extend(gr.as_slice().iter().map(|&v| v as f64));
            }
            let reduced = allreduce_mean(comm, flat, step as u64);
            let mut off = 0;
            for (p, shape) in params.iter().zip(&shapes) {
                let n: usize = shape.iter().product();
                let g32: Vec<f32> = reduced[off..off + n].iter().map(|&v| v as f32).collect();
                p.zero_grad();
                p.accum_grad(&Tensor::from_vec(g32, shape));
                off += n;
            }
            clip_grad_norm(&params, cfg.grad_clip);
            opt.step();
        }
        let probe: Vec<f32> = params[0].value().as_slice()[..4.min(params[0].numel())].to_vec();
        (last_loss, probe)
    });
    let wall = t0.elapsed().as_secs_f64();

    let instances = cfg.steps * workers * cfg.per_worker_batch;
    let (final_loss, weight_probe) = results[0].clone();
    // Replica consistency: every worker must end with identical weights.
    for (loss, probe) in &results[1..] {
        let _ = loss;
        assert_eq!(
            probe, &weight_probe,
            "data-parallel replicas diverged — all-reduce is broken"
        );
    }
    ParallelStats {
        workers,
        instances,
        wall_seconds: wall,
        instances_per_sec: instances as f64 / wall.max(1e-9),
        final_loss,
        weight_probe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{encode_episode, EncodeConfig};
    use crate::normalize::NormStats;
    use cocean::Snapshot;

    fn episodes(cfg: &SwinConfig, n: usize) -> Vec<Episode> {
        (0..n)
            .map(|e| {
                let snaps: Vec<Snapshot> = (0..=cfg.t_out)
                    .map(|t| {
                        let phase = (e * 7 + t) as f32 * 0.3;
                        let mut s = Snapshot {
                            time: t as f64,
                            nz: cfg.nz,
                            ny: cfg.ny,
                            nx: cfg.nx,
                            zeta: vec![0.0; cfg.ny * cfg.nx],
                            u: vec![0.05; cfg.nz * cfg.ny * cfg.nx],
                            v: vec![0.0; cfg.nz * cfg.ny * cfg.nx],
                            w: vec![0.0; cfg.nz * cfg.ny * cfg.nx],
                        };
                        for (i, z) in s.zeta.iter_mut().enumerate() {
                            *z = 0.2 * (phase + i as f32 * 0.5).sin();
                        }
                        s
                    })
                    .collect();
                encode_episode(&snaps, &NormStats::identity(), &EncodeConfig::default())
            })
            .collect()
    }

    fn tiny_parallel_cfg() -> ParallelConfig {
        ParallelConfig {
            model: SwinConfig::tiny(8, 8, 2, 2),
            seed: 3,
            lr: 1e-3,
            grad_clip: 1.0,
            checkpoint: CheckpointPolicy::None,
            per_worker_batch: 1,
            steps: 2,
        }
    }

    #[test]
    fn replicas_stay_consistent() {
        let cfg = tiny_parallel_cfg();
        let eps = episodes(&cfg.model, 6);
        let mask = Tensor::ones(&[8, 8]);
        // The consistency assert inside train_data_parallel is the test.
        let stats = train_data_parallel(&cfg, &eps, &mask, 3);
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.instances, 2 * 3);
        assert!(stats.final_loss.is_finite());
    }

    #[test]
    fn single_worker_matches_serial_trainer_semantics() {
        // P=1 all-reduce is the identity: equivalent to plain training.
        let cfg = tiny_parallel_cfg();
        let eps = episodes(&cfg.model, 4);
        let mask = Tensor::ones(&[8, 8]);
        let s1 = train_data_parallel(&cfg, &eps, &mask, 1);
        let s1b = train_data_parallel(&cfg, &eps, &mask, 1);
        assert_eq!(s1.weight_probe, s1b.weight_probe, "deterministic");
    }

    #[test]
    fn throughput_reported() {
        let cfg = tiny_parallel_cfg();
        let eps = episodes(&cfg.model, 4);
        let mask = Tensor::ones(&[8, 8]);
        let stats = train_data_parallel(&cfg, &eps, &mask, 2);
        assert!(stats.instances_per_sec > 0.0);
        assert!(stats.wall_seconds > 0.0);
    }
}
