//! Training checkpoints: the complete trainer state — parameters, BatchNorm
//! running statistics, Adam moments, step counter, epoch — captured as
//! tensors and round-trippable through a self-describing byte format.
//!
//! Restoring a checkpoint into a freshly constructed trainer and continuing
//! training is bitwise-identical to never having stopped: the optimizer's
//! moments and bias-correction counter are part of the snapshot, and every
//! update kernel is deterministic (see `DESIGN.md`, "Gradient tape").

use ctensor::prelude::*;

const MAGIC: &[u8; 4] = b"CTRN";
const VERSION: u32 = 1;

/// Full training state at an instant: enough to resume bitwise-identically.
#[derive(Clone, Debug)]
pub struct TrainCheckpoint {
    /// Epoch counter at capture time (caller-defined meaning).
    pub epoch: u64,
    /// Adam step counter (`t`) — drives bias correction on resume.
    pub opt_t: i32,
    /// Trainable parameters in `Module::params` order.
    pub params: Vec<Tensor>,
    /// Non-trainable buffers (BatchNorm running mean/var, interleaved).
    pub buffers: Vec<Tensor>,
    /// Adam first moments, positionally aligned with `params`.
    pub m: Vec<Option<Tensor>>,
    /// Adam second moments, positionally aligned with `params`.
    pub v: Vec<Option<Tensor>>,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    put_u64(out, t.ndim() as u64);
    for &d in t.shape() {
        put_u64(out, d as u64);
    }
    for &x in t.as_slice() {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_tensor_list(out: &mut Vec<u8>, ts: &[Tensor]) {
    put_u64(out, ts.len() as u64);
    for t in ts {
        put_tensor(out, t);
    }
}

fn put_opt_list(out: &mut Vec<u8>, ts: &[Option<Tensor>]) {
    put_u64(out, ts.len() as u64);
    for t in ts {
        match t {
            Some(t) => {
                out.push(1);
                put_tensor(out, t);
            }
            None => out.push(0),
        }
    }
}

/// Little-endian cursor over a checkpoint byte stream.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!(
                "checkpoint truncated at byte {} (need {n} more)",
                self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn tensor(&mut self) -> Result<Tensor, String> {
        let ndim = self.u64()? as usize;
        if ndim > 16 {
            return Err(format!("implausible tensor rank {ndim}"));
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(self.u64()? as usize);
        }
        let numel: usize = shape.iter().product();
        let raw = self.take(numel * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Tensor::from_vec(data, &shape))
    }

    fn tensor_list(&mut self) -> Result<Vec<Tensor>, String> {
        let n = self.u64()? as usize;
        (0..n).map(|_| self.tensor()).collect()
    }

    fn opt_list(&mut self) -> Result<Vec<Option<Tensor>>, String> {
        let n = self.u64()? as usize;
        (0..n)
            .map(|_| match self.take(1)?[0] {
                0 => Ok(None),
                1 => self.tensor().map(Some),
                t => Err(format!("bad option tag {t}")),
            })
            .collect()
    }
}

impl TrainCheckpoint {
    /// Serialize to a self-describing little-endian byte stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        put_u64(&mut out, self.epoch);
        out.extend_from_slice(&(self.opt_t as i64).to_le_bytes());
        put_tensor_list(&mut out, &self.params);
        put_tensor_list(&mut out, &self.buffers);
        put_opt_list(&mut out, &self.m);
        put_opt_list(&mut out, &self.v);
        out
    }

    /// Parse a stream produced by [`TrainCheckpoint::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err("not a training checkpoint (bad magic)".into());
        }
        let version = u32::from_le_bytes(r.take(4)?.try_into().unwrap());
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        let epoch = r.u64()?;
        let opt_t = i64::from_le_bytes(r.take(8)?.try_into().unwrap()) as i32;
        let params = r.tensor_list()?;
        let buffers = r.tensor_list()?;
        let m = r.opt_list()?;
        let v = r.opt_list()?;
        if m.len() != params.len() || v.len() != params.len() {
            return Err(format!(
                "moment/param length mismatch: {} params, {} m, {} v",
                params.len(),
                m.len(),
                v.len()
            ));
        }
        Ok(Self {
            epoch,
            opt_t,
            params,
            buffers,
            m,
            v,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 7,
            opt_t: 42,
            params: vec![
                Tensor::from_vec(vec![1.5, -2.25, 0.0], &[3]),
                Tensor::from_vec(vec![f32::MIN_POSITIVE, -0.0], &[1, 2]),
            ],
            buffers: vec![Tensor::scalar(3.125)],
            m: vec![Some(Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3])), None],
            v: vec![Some(Tensor::from_vec(vec![0.4, 0.5, 0.6], &[3])), None],
        }
    }

    #[test]
    fn byte_round_trip_is_bitwise_exact() {
        let ck = sample();
        let back = TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.epoch, ck.epoch);
        assert_eq!(back.opt_t, ck.opt_t);
        for (a, b) in ck.params.iter().zip(&back.params) {
            assert_eq!(a.shape(), b.shape());
            // Bitwise, not approximate: -0.0 and subnormals must survive.
            let ab: Vec<u32> = a.as_slice().iter().map(|x| x.to_bits()).collect();
            let bb: Vec<u32> = b.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(ab, bb);
        }
        assert!(back.m[1].is_none());
        assert!(back.v[1].is_none());
        assert_eq!(back.m[0].as_ref().unwrap().as_slice(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let ck = sample();
        let bytes = ck.to_bytes();
        assert!(TrainCheckpoint::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(TrainCheckpoint::from_bytes(b"nope").is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(TrainCheckpoint::from_bytes(&bad).is_err());
    }
}
