//! Prefetching data loader with pinned-buffer staging (paper §III-D).
//!
//! Three mechanisms from the paper's training-pipeline optimization are
//! modeled faithfully on CPU:
//!
//! - **Prefetch workers**: episodes are decompressed/encoded on background
//!   threads and queued, overlapping "I/O" with compute. With zero
//!   workers, loading happens synchronously inside the training loop.
//! - **Pinned staging buffers**: the copy into the compute buffer goes
//!   through a staging area. Pinned mode reuses pooled buffers (one copy);
//!   pageable mode allocates a fresh bounce buffer per transfer and copies
//!   twice — exactly the extra bounce CUDA performs for pageable memory.
//! - **Deterministic ordering**: whatever the worker count, batches are
//!   re-sequenced so an epoch's order depends only on the shuffle seed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver};
use ctensor::prelude::*;
use parking_lot::Mutex;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::{encode_episode, stack_episodes, EncodeConfig, Episode};
use crate::normalize::NormStats;
use crate::store::SnapshotStore;

/// Loader configuration.
#[derive(Clone, Debug)]
pub struct LoaderConfig {
    /// Background workers (0 = synchronous loading).
    pub prefetch_workers: usize,
    /// Queue capacity (total in-flight episodes).
    pub prefetch_factor: usize,
    /// Reuse pooled staging buffers (pinned) vs per-transfer allocation.
    pub pinned: bool,
    /// Episodes per batch.
    pub batch_size: usize,
    /// Shuffle seed; `None` keeps archive order.
    pub shuffle_seed: Option<u64>,
}

impl Default for LoaderConfig {
    fn default() -> Self {
        Self {
            prefetch_workers: 2,
            prefetch_factor: 4,
            pinned: true,
            batch_size: 1,
            shuffle_seed: Some(0),
        }
    }
}

/// Shared staging-buffer pool (the "pinned memory" region).
#[derive(Clone, Default)]
pub struct BufferPool {
    pool: Arc<Mutex<Vec<Vec<f32>>>>,
}

impl BufferPool {
    /// Take a buffer of at least `n` elements.
    fn take(&self, n: usize) -> Vec<f32> {
        let mut pool = self.pool.lock();
        if let Some(pos) = pool.iter().position(|b| b.capacity() >= n) {
            let mut b = pool.swap_remove(pos);
            b.clear();
            b.resize(n, 0.0);
            return b;
        }
        drop(pool);
        vec![0.0; n]
    }

    fn give(&self, buf: Vec<f32>) {
        let mut pool = self.pool.lock();
        if pool.len() < 16 {
            pool.push(buf);
        }
    }

    /// Buffers currently pooled (diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }
}

/// Copy a tensor into compute memory through the staging path.
fn transfer_tensor(t: &Tensor, pinned: bool, pool: &BufferPool) -> Tensor {
    let n = t.numel();
    if pinned {
        // One copy via a reused staging buffer.
        let mut staging = pool.take(n);
        staging.copy_from_slice(t.as_slice());
        let out = Tensor::from_vec(staging.clone(), t.shape());
        pool.give(staging);
        out
    } else {
        // Pageable: bounce through a freshly allocated buffer (alloc +
        // first-touch + two copies), as CUDA does for non-pinned host
        // memory.
        let mut bounce = vec![0.0f32; n];
        bounce.copy_from_slice(t.as_slice());
        let mut dev = vec![0.0f32; n];
        dev.copy_from_slice(&bounce);
        Tensor::from_vec(dev, t.shape())
    }
}

fn transfer_episode(e: Episode, pinned: bool, pool: &BufferPool) -> Episode {
    Episode {
        x3d: transfer_tensor(&e.x3d, pinned, pool),
        x2d: transfer_tensor(&e.x2d, pinned, pool),
        target3: transfer_tensor(&e.target3, pinned, pool),
        target2: transfer_tensor(&e.target2, pinned, pool),
        t0: e.t0,
    }
}

/// Episode loader over a compressed snapshot archive.
pub struct DataLoader {
    store: Arc<SnapshotStore>,
    starts: Vec<usize>,
    t_out: usize,
    stats: NormStats,
    encode: EncodeConfig,
    pub cfg: LoaderConfig,
    pool: BufferPool,
    /// Episodes dropped because a prefetch worker died before delivering
    /// them (see [`DataLoader::dropped_episodes`]).
    dropped: Arc<AtomicUsize>,
}

impl DataLoader {
    pub fn new(
        store: Arc<SnapshotStore>,
        starts: Vec<usize>,
        t_out: usize,
        stats: NormStats,
        encode: EncodeConfig,
        cfg: LoaderConfig,
    ) -> Self {
        assert!(cfg.batch_size >= 1);
        Self {
            store,
            starts,
            t_out,
            stats,
            encode,
            cfg,
            pool: BufferPool::default(),
            dropped: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Episodes lost to dead prefetch workers across all epochs so far.
    /// Non-zero values mean some instances were skipped rather than
    /// crashing the training loop mid-stream.
    pub fn dropped_episodes(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Instances per epoch.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when there are no instances.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    fn epoch_order(&self, epoch: u64) -> Vec<usize> {
        let mut order = self.starts.clone();
        if let Some(seed) = self.cfg.shuffle_seed {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(epoch));
            order.shuffle(&mut rng);
        }
        order
    }

    fn load_one(&self, start: usize) -> Episode {
        let snaps: Vec<_> = (start..=start + self.t_out)
            .map(|i| self.store.fetch(i))
            .collect();
        let ep = encode_episode(&snaps, &self.stats, &self.encode);
        transfer_episode(ep, self.cfg.pinned, &self.pool)
    }

    /// Iterate one epoch of batches.
    pub fn epoch(&self, epoch: u64) -> EpochIter<'_> {
        let order = self.epoch_order(epoch);
        if self.cfg.prefetch_workers == 0 {
            return EpochIter {
                loader: self,
                order,
                cursor: 0,
                rx: None,
                reorder: BTreeMap::new(),
                next_seq: 0,
                dropped: Arc::clone(&self.dropped),
                _workers: Vec::new(),
            };
        }
        // Spawn prefetch workers sharing an index cursor.
        let (tx, rx) = bounded::<(usize, Episode)>(self.cfg.prefetch_factor.max(1));
        let cursor = Arc::new(AtomicUsize::new(0));
        let order_arc = Arc::new(order.clone());
        let mut workers = Vec::new();
        for _ in 0..self.cfg.prefetch_workers {
            let tx = tx.clone();
            let cursor = Arc::clone(&cursor);
            let order = Arc::clone(&order_arc);
            let store = Arc::clone(&self.store);
            let stats = self.stats;
            let encode = self.encode.clone();
            let t_out = self.t_out;
            let pinned = self.cfg.pinned;
            let pool = self.pool.clone();
            workers.push(std::thread::spawn(move || loop {
                let seq = cursor.fetch_add(1, Ordering::Relaxed);
                if seq >= order.len() {
                    return;
                }
                let start = order[seq];
                let snaps: Vec<_> = (start..=start + t_out).map(|i| store.fetch(i)).collect();
                let ep = encode_episode(&snaps, &stats, &encode);
                let ep = transfer_episode(ep, pinned, &pool);
                if tx.send((seq, ep)).is_err() {
                    return; // consumer dropped
                }
            }));
        }
        EpochIter {
            loader: self,
            order,
            cursor: 0,
            rx: Some(rx),
            reorder: BTreeMap::new(),
            next_seq: 0,
            dropped: Arc::clone(&self.dropped),
            _workers: workers,
        }
    }
}

/// Iterator over one epoch's batches (deterministic order).
pub struct EpochIter<'l> {
    loader: &'l DataLoader,
    order: Vec<usize>,
    cursor: usize,
    rx: Option<Receiver<(usize, Episode)>>,
    reorder: BTreeMap<usize, Episode>,
    next_seq: usize,
    dropped: Arc<AtomicUsize>,
    _workers: Vec<JoinHandle<()>>,
}

impl EpochIter<'_> {
    fn next_episode(&mut self) -> Option<Episode> {
        match &self.rx {
            None => {
                if self.cursor >= self.order.len() {
                    return None;
                }
                let ep = self.loader.load_one(self.order[self.cursor]);
                self.cursor += 1;
                Some(ep)
            }
            Some(rx) => {
                while self.next_seq < self.order.len() {
                    if let Some(ep) = self.reorder.remove(&self.next_seq) {
                        self.next_seq += 1;
                        return Some(ep);
                    }
                    // Wait for the next expected sequence number to arrive.
                    match rx.recv() {
                        Ok((seq, ep)) => {
                            self.reorder.insert(seq, ep);
                        }
                        Err(_) => {
                            // Every worker is gone (e.g. one panicked on a
                            // corrupt episode and the rest drained the
                            // cursor). Skip the sequence numbers that will
                            // never arrive, counting them, and keep
                            // serving whatever did make it into the
                            // reorder buffer instead of panicking
                            // mid-stream.
                            if let Some((&seq, _)) = self.reorder.iter().next() {
                                self.dropped
                                    .fetch_add(seq - self.next_seq, Ordering::Relaxed);
                                self.next_seq = seq;
                            } else {
                                self.dropped
                                    .fetch_add(self.order.len() - self.next_seq, Ordering::Relaxed);
                                self.next_seq = self.order.len();
                                return None;
                            }
                        }
                    }
                }
                None
            }
        }
    }
}

impl Iterator for EpochIter<'_> {
    type Item = Episode;

    fn next(&mut self) -> Option<Episode> {
        let mut batch = Vec::with_capacity(self.loader.cfg.batch_size);
        while batch.len() < self.loader.cfg.batch_size {
            match self.next_episode() {
                Some(ep) => batch.push(ep),
                None => break,
            }
        }
        if batch.is_empty() {
            None
        } else {
            Some(stack_episodes(&batch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocean::Snapshot;

    fn archive(n: usize) -> Arc<SnapshotStore> {
        let snaps: Vec<Snapshot> = (0..n)
            .map(|t| Snapshot {
                time: t as f64,
                nz: 1,
                ny: 6,
                nx: 6,
                zeta: vec![t as f32 * 0.01; 36],
                u: vec![0.1; 36],
                v: vec![-0.1; 36],
                w: vec![0.0; 36],
            })
            .collect();
        Arc::new(SnapshotStore::build(&snaps))
    }

    fn mk_loader(cfg: LoaderConfig) -> DataLoader {
        let store = archive(20);
        let starts: Vec<usize> = (0..16).collect();
        DataLoader::new(
            store,
            starts,
            3,
            NormStats::identity(),
            EncodeConfig::default(),
            cfg,
        )
    }

    #[test]
    fn synchronous_epoch_covers_all_instances() {
        let loader = mk_loader(LoaderConfig {
            prefetch_workers: 0,
            batch_size: 1,
            shuffle_seed: None,
            ..Default::default()
        });
        let batches: Vec<_> = loader.epoch(0).collect();
        assert_eq!(batches.len(), 16);
        // Archive order preserved without shuffling.
        assert_eq!(batches[0].t0, 0.0);
        assert_eq!(batches[15].t0, 15.0);
    }

    #[test]
    fn prefetched_order_matches_synchronous() {
        let sync = mk_loader(LoaderConfig {
            prefetch_workers: 0,
            batch_size: 1,
            shuffle_seed: Some(42),
            ..Default::default()
        });
        let pre = mk_loader(LoaderConfig {
            prefetch_workers: 3,
            prefetch_factor: 4,
            batch_size: 1,
            shuffle_seed: Some(42),
            ..Default::default()
        });
        let a: Vec<f64> = sync.epoch(1).map(|b| b.t0).collect();
        let b: Vec<f64> = pre.epoch(1).map(|b| b.t0).collect();
        assert_eq!(a, b, "worker count must not change epoch order");
    }

    #[test]
    fn batching_stacks_samples() {
        let loader = mk_loader(LoaderConfig {
            prefetch_workers: 2,
            batch_size: 4,
            shuffle_seed: Some(1),
            ..Default::default()
        });
        let batches: Vec<_> = loader.epoch(0).collect();
        assert_eq!(batches.len(), 4);
        for b in &batches {
            assert_eq!(b.x3d.shape()[0], 4);
        }
    }

    #[test]
    fn epochs_shuffle_differently() {
        let loader = mk_loader(LoaderConfig {
            prefetch_workers: 0,
            batch_size: 1,
            shuffle_seed: Some(9),
            ..Default::default()
        });
        let e0: Vec<f64> = loader.epoch(0).map(|b| b.t0).collect();
        let e1: Vec<f64> = loader.epoch(1).map(|b| b.t0).collect();
        assert_ne!(e0, e1, "different epochs should reshuffle");
        let e0b: Vec<f64> = loader.epoch(0).map(|b| b.t0).collect();
        assert_eq!(e0, e0b, "same epoch must replay identically");
    }

    #[test]
    fn dead_worker_skips_episodes_instead_of_panicking() {
        // One prefetch worker that panics mid-epoch (episode start beyond
        // the archive): the iterator must deliver everything produced
        // before the crash and count the rest as dropped — not poison the
        // whole training loop.
        let store = archive(20);
        let starts = vec![0usize, 1, 900, 2, 3]; // 900 is out of range
        let loader = DataLoader::new(
            store,
            starts,
            3,
            NormStats::identity(),
            EncodeConfig::default(),
            LoaderConfig {
                prefetch_workers: 1,
                prefetch_factor: 4,
                batch_size: 1,
                shuffle_seed: None,
                ..Default::default()
            },
        );
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the worker panic
        let batches: Vec<_> = loader.epoch(0).collect();
        std::panic::set_hook(prev_hook);
        assert_eq!(batches.len(), 2, "episodes before the crash survive");
        assert_eq!(batches[0].t0, 0.0);
        assert_eq!(batches[1].t0, 1.0);
        assert_eq!(loader.dropped_episodes(), 3, "crashed + undelivered");
    }

    #[test]
    fn pinned_pool_reuses_buffers() {
        let loader = mk_loader(LoaderConfig {
            prefetch_workers: 0,
            batch_size: 1,
            pinned: true,
            shuffle_seed: None,
            ..Default::default()
        });
        let _: Vec<_> = loader.epoch(0).collect();
        assert!(loader.pool.pooled() > 0, "staging buffers must be pooled");
    }

    #[test]
    fn transfer_preserves_data_both_modes() {
        let t = Tensor::from_vec((0..100).map(|i| i as f32).collect(), &[4, 25]);
        let pool = BufferPool::default();
        for pinned in [true, false] {
            let out = transfer_tensor(&t, pinned, &pool);
            assert_eq!(out.as_slice(), t.as_slice());
            assert_eq!(out.shape(), t.shape());
        }
    }
}
