//! Z-score normalization over the training year (paper §III-B: "All
//! variables are normalized using z-score normalization based on the mean
//! and standard deviation from the 2011 data").

use cocean::Snapshot;
use serde::{Deserialize, Serialize};

/// Variable order used throughout: u, v, w, ζ.
pub const VAR_NAMES: [&str; 4] = ["u", "v", "w", "zeta"];

/// Per-variable mean/std in physical units.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NormStats {
    pub mean: [f64; 4],
    pub std: [f64; 4],
}

impl NormStats {
    /// Identity (no-op) normalization.
    pub fn identity() -> Self {
        Self {
            mean: [0.0; 4],
            std: [1.0; 4],
        }
    }

    /// Compute stats over a snapshot archive, restricted to water cells.
    /// `mask` is row-major `(ny, nx)` with 1.0 = water.
    pub fn from_snapshots(snaps: &[Snapshot], mask: &[f64]) -> Self {
        assert!(!snaps.is_empty());
        let mut sum = [0.0f64; 4];
        let mut sum_sq = [0.0f64; 4];
        let mut count = [0usize; 4];
        for s in snaps {
            assert_eq!(mask.len(), s.ny * s.nx);
            for j in 0..s.ny {
                for i in 0..s.nx {
                    if mask[j * s.nx + i] < 0.5 {
                        continue;
                    }
                    for k in 0..s.nz {
                        let idx = s.idx3(k, j, i);
                        for (c, field) in [&s.u, &s.v, &s.w].into_iter().enumerate() {
                            let v = field[idx] as f64;
                            sum[c] += v;
                            sum_sq[c] += v * v;
                            count[c] += 1;
                        }
                    }
                    let z = s.zeta[s.idx2(j, i)] as f64;
                    sum[3] += z;
                    sum_sq[3] += z * z;
                    count[3] += 1;
                }
            }
        }
        let mut mean = [0.0; 4];
        let mut std = [0.0; 4];
        for c in 0..4 {
            let n = count[c].max(1) as f64;
            mean[c] = sum[c] / n;
            let var = (sum_sq[c] / n - mean[c] * mean[c]).max(0.0);
            // Floor the std so degenerate variables (e.g. w ≈ 0 early in
            // spinup) do not explode when normalized.
            std[c] = var.sqrt().max(1e-8);
        }
        Self { mean, std }
    }

    /// Normalize a value of variable `c` (0=u, 1=v, 2=w, 3=ζ).
    #[inline]
    pub fn normalize(&self, c: usize, v: f32) -> f32 {
        ((v as f64 - self.mean[c]) / self.std[c]) as f32
    }

    /// Invert the normalization.
    #[inline]
    pub fn denormalize(&self, c: usize, v: f32) -> f32 {
        (v as f64 * self.std[c] + self.mean[c]) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(ny: usize, nx: usize, nz: usize, base: f32) -> Snapshot {
        let n3 = nz * ny * nx;
        Snapshot {
            time: 0.0,
            nz,
            ny,
            nx,
            zeta: (0..ny * nx).map(|i| base + i as f32).collect(),
            u: vec![base; n3],
            v: vec![-base; n3],
            w: vec![0.0; n3],
        }
    }

    #[test]
    fn stats_match_hand_computation() {
        let s1 = snap(2, 2, 1, 1.0);
        let s2 = snap(2, 2, 1, 3.0);
        let mask = vec![1.0; 4];
        let stats = NormStats::from_snapshots(&[s1, s2], &mask);
        assert!((stats.mean[0] - 2.0).abs() < 1e-6); // u: 1 and 3
        assert!((stats.std[0] - 1.0).abs() < 1e-6);
        assert!((stats.mean[1] + 2.0).abs() < 1e-6); // v: -1 and -3
                                                     // ζ: values base..base+3 for base 1 and 3 → mean 3.5
        assert!((stats.mean[3] - 3.5).abs() < 1e-6);
    }

    #[test]
    fn masked_cells_excluded() {
        let mut s = snap(1, 2, 1, 1.0);
        s.u[0] = 0.0;
        s.u[1] = 1000.0; // land cell
        let mask = vec![1.0, 0.0];
        let stats = NormStats::from_snapshots(&[s], &mask);
        assert!(stats.mean[0].abs() < 1e-9, "land must not pollute stats");
    }

    #[test]
    fn roundtrip() {
        let stats = NormStats {
            mean: [0.1, -0.2, 0.0, 0.5],
            std: [0.3, 0.4, 1e-4, 0.2],
        };
        for c in 0..4 {
            for &v in &[0.0f32, 1.5, -2.25] {
                let n = stats.normalize(c, v);
                let back = stats.denormalize(c, n);
                assert!((back - v).abs() < 1e-5, "c={c}, v={v}: {back}");
            }
        }
    }

    #[test]
    fn degenerate_std_floored() {
        let s = snap(2, 2, 1, 0.0); // w identically zero
        let stats = NormStats::from_snapshots(&[s], &[1.0; 4]);
        assert!(stats.std[2] >= 1e-8);
        assert!(stats.normalize(2, 0.0).is_finite());
    }
}
