//! Drift watchdog end-to-end: calibrate a baseline on a healthy
//! surrogate, seed a degraded surrogate (biased free surface), and watch
//! the governor walk the precision ladder int8 → f16 → f32 and force
//! ROMS-fallback routing — with the incident visible on `/healthz` and in
//! the flight-recorder dump.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use coastal::obs::drift::{DriftBaseline, DriftConfig};
use coastal::physics::{Verifier, VerifierConfig};
use coastal::serve::{DriftGovernor, GovernorAction, OpsServer, OpsState, ServeRoute};
use coastal::tensor::quant::Precision;
use coastal::{train_surrogate, Scenario};
use cocean::Snapshot;

/// `(passed, ζ_mean, ζ_extreme)` for one member episode: the verifier's
/// verdict over the whole episode plus free-surface summary statistics.
fn member_stats(
    verifier: &Verifier,
    initial: &Snapshot,
    forecast: &[Snapshot],
) -> (bool, f64, f64) {
    let verdicts = verifier.check_episode(initial, forecast);
    let passed = !verdicts.is_empty() && verdicts.iter().all(|v| v.passed);
    let (mut sum, mut n, mut extreme) = (0.0f64, 0usize, 0.0f64);
    for s in forecast {
        for &z in &s.zeta {
            sum += z as f64;
            n += 1;
            extreme = extreme.max((z as f64).abs());
        }
    }
    (passed, sum / n.max(1) as f64, extreme)
}

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn degraded_surrogate_walks_precision_ladder_into_roms_fallback() {
    let mut sc = Scenario::small();
    sc.epochs = 2;
    let grid = sc.grid();
    let archive = sc.simulate_archive(&grid, 0, 40);
    let trained = train_surrogate(&sc, &grid, &archive);
    let verifier = Verifier::new(&grid, VerifierConfig::default());

    // Calibration: healthy member episodes over sliding windows.
    let len = sc.t_out + 1;
    let healthy: Vec<(bool, f64, f64)> = (0..8)
        .map(|i| {
            let window = &archive[i..i + len];
            let forecast = trained.predict_episode(window);
            member_stats(&verifier, &window[0], &forecast)
        })
        .collect();
    let baseline = DriftBaseline::from_members(healthy.iter().copied());

    // Seeded degradation: a +1 m free-surface bias — the signature of a
    // drifted/corrupted surrogate (stale quantization, bad weight push).
    // It blows the ζ-mean drift gate and breaks mass conservation.
    let degraded: Vec<(bool, f64, f64)> = (0..8)
        .map(|i| {
            let window = &archive[i..i + len];
            let mut forecast = trained.predict_episode(window);
            for s in &mut forecast {
                for z in &mut s.zeta {
                    *z += 1.0;
                }
            }
            member_stats(&verifier, &window[0], &forecast)
        })
        .collect();

    // Thresholds sized so the natural tide-phase spread between healthy
    // sliding windows stays clean while the seeded 1 m bias always
    // breaches: windows of 4 members quantize pass rates to 0.25 steps,
    // and window ζ-means track the tide phase within centimeters.
    let cfg = DriftConfig {
        window: 4,
        max_pass_rate_drop: 0.6,
        max_mean_drift: 0.25,
        max_extreme_drift: 10.0,
        trip_windows: 2,
        recover_windows: 2,
    };
    let governor = Arc::new(DriftGovernor::new(
        baseline,
        cfg,
        vec![Precision::Int8, Precision::F16, Precision::F32],
    ));
    let state = OpsState::default().with_governor(Arc::clone(&governor));
    state.ready.store(true, Ordering::Release);
    let ops = OpsServer::bind("127.0.0.1:0", OpsState::clone(&state)).expect("bind ops");
    let addr = ops.local_addr();

    // Healthy members keep the fast tier.
    for &(p, m, x) in &healthy {
        assert!(governor.observe_member(p, m, x).is_none());
    }
    assert_eq!(governor.route(), ServeRoute::Surrogate(Precision::Int8));
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"route\": \"int8\""), "{body}");

    // The degraded stream trips escalations down the whole ladder: each
    // (trip_windows × window) = 8 degraded members steps one rung.
    let mut steps = Vec::new();
    for round in 0..3 {
        for &(p, m, x) in &degraded {
            if let Some(a) = governor.observe_member(p, m, x) {
                steps.push(a);
            }
        }
        assert_eq!(steps.len(), round + 1, "one escalation per 2 windows");
    }
    assert!(matches!(
        steps[0],
        GovernorAction::SteppedDown {
            from: ServeRoute::Surrogate(Precision::Int8),
            to: ServeRoute::Surrogate(Precision::F16),
        }
    ));
    assert!(matches!(
        steps[2],
        GovernorAction::SteppedDown {
            to: ServeRoute::RomsFallback,
            ..
        }
    ));
    assert_eq!(governor.route(), ServeRoute::RomsFallback);

    // The page is visible on /healthz (503 + route), and the incident
    // froze the flight recorder with the escalation as the reason.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "ROMS fallback must page: {body}");
    assert!(body.contains("\"status\": \"page\""), "{body}");
    assert!(body.contains("\"route\": \"roms_fallback\""), "{body}");
    assert!(body.contains("drift escalation"), "{body}");

    assert!(coastal::obs::recorder::global().is_frozen());
    let (status, dump) = http_get(addr, "/debug/traces");
    assert_eq!(status, 200);
    assert!(dump.contains("\"frozen\": true"), "{dump:.300}");
    assert!(dump.contains("drift escalation"), "{dump:.300}");

    // Recovery: healthy members walk it back up one rung per recovery.
    coastal::obs::recorder::global().thaw();
    let mut ups = 0;
    for _ in 0..16 {
        if governor.level() == 0 {
            break;
        }
        for &(p, m, x) in &healthy {
            if let Some(a) = governor.observe_member(p, m, x) {
                assert!(matches!(a, GovernorAction::SteppedUp { .. }));
                ups += 1;
            }
        }
    }
    assert_eq!(ups, 3, "three recoveries back to the fast tier");
    assert_eq!(governor.route(), ServeRoute::Surrogate(Precision::Int8));
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
}
