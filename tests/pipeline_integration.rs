//! Integration of simulator output with the storage/loading/training
//! pipeline across crates.

use coastal::pipeline::{
    DataLoader, EncodeConfig, LoaderConfig, NormStats, SnapshotStore, WindowSpec,
};
use coastal::Scenario;
use std::sync::Arc;

#[test]
fn archive_roundtrips_through_f16_store() {
    let sc = Scenario::small();
    let grid = sc.grid();
    let snaps = sc.simulate_archive(&grid, 0, 6);
    let store = SnapshotStore::build(&snaps);
    assert_eq!(store.len(), 6);
    for (i, orig) in snaps.iter().enumerate() {
        let got = store.fetch(i);
        // f16 keeps ~3 decimal digits; tidal fields are O(1).
        for (a, b) in got.zeta.iter().zip(&orig.zeta) {
            assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
    }
}

#[test]
fn loader_feeds_simulated_episodes_deterministically() {
    let sc = Scenario::small();
    let grid = sc.grid();
    let snaps = sc.simulate_archive(&grid, 0, 20);
    let mask: Vec<f64> = (0..grid.ny)
        .flat_map(|j| {
            let m = &grid.mask_rho;
            (0..grid.nx).map(move |i| m.get(j as isize, i as isize))
        })
        .collect();
    let stats = NormStats::from_snapshots(&snaps, &mask);
    let store = Arc::new(SnapshotStore::build(&snaps));
    let starts = WindowSpec::train(sc.t_out).starts(snaps.len());
    assert!(!starts.is_empty());
    let mk = |workers: usize| {
        DataLoader::new(
            Arc::clone(&store),
            starts.clone(),
            sc.t_out,
            stats,
            EncodeConfig::default(),
            LoaderConfig {
                prefetch_workers: workers,
                shuffle_seed: Some(7),
                ..Default::default()
            },
        )
    };
    let sync: Vec<f64> = mk(0).epoch(0).map(|b| b.t0).collect();
    let pre: Vec<f64> = mk(3).epoch(0).map(|b| b.t0).collect();
    assert_eq!(sync, pre, "worker count must not perturb episode order");
    // Normalized inputs are O(1).
    let first = mk(0).epoch(0).next().unwrap();
    assert!(first.x2d.max_all() < 20.0);
    assert!(first.x2d.min_all() > -20.0);
}
