//! End-to-end parity gate for the reduced-precision inference tiers.
//!
//! Trains the standard small verification scenario once, then forecasts
//! the same test episode at f32 / f16 / int8 and asserts the reduced
//! tiers stay within the documented ζ tolerances
//! ([`coastal::core::ZETA_TOL_INT8`] / [`coastal::core::ZETA_TOL_F16`])
//! of the f32 forward — the gate is enforced here, not just reported.

use coastal::core::{ZETA_TOL_F16, ZETA_TOL_INT8};
use coastal::tensor::quant::Precision;
use coastal::{train_surrogate, Scenario};
use cocean::Snapshot;

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .fold(0.0f32, |m, (x, y)| m.max((x - y).abs()))
}

fn max_field_diffs(a: &[Snapshot], b: &[Snapshot]) -> (f32, f32) {
    assert_eq!(a.len(), b.len());
    let mut dz = 0.0f32;
    let mut duv = 0.0f32;
    for (s, t) in a.iter().zip(b) {
        dz = dz.max(max_abs_diff(&s.zeta, &t.zeta));
        duv = duv.max(max_abs_diff(&s.u, &t.u));
        duv = duv.max(max_abs_diff(&s.v, &t.v));
    }
    (dz, duv)
}

#[test]
fn quantized_forecasts_within_zeta_tolerance() {
    let sc = Scenario::small();
    let grid = sc.grid();
    let archive = sc.simulate_archive(&grid, 0, 30);
    let trained = train_surrogate(&sc, &grid, &archive);
    let test = sc.simulate_archive(&grid, 1, sc.t_out + 1);
    let spec = trained.spec();

    let f32_model = spec.clone().instantiate();
    assert_eq!(f32_model.precision, Precision::F32);
    let pred_f32 = f32_model.predict_episode(&test);

    // The f32 path through a precision-carrying graph must be identical
    // to the default inference graph (no silent behavior change).
    let pred_direct = trained.predict_episode(&test);
    let (dz0, _) = max_field_diffs(&pred_direct, &pred_f32);
    assert_eq!(dz0, 0.0, "f32 spec roundtrip must stay bitwise");

    for (prec, tol) in [
        (Precision::F16, ZETA_TOL_F16),
        (Precision::Int8, ZETA_TOL_INT8),
    ] {
        let model = spec.clone().with_precision(prec).instantiate();
        let pred = model.predict_episode(&test);
        assert_eq!(pred.len(), pred_f32.len());
        let (dz, duv) = max_field_diffs(&pred_f32, &pred);
        println!("{prec}: max|Δζ| = {dz:.3e} m, max|Δu,v| = {duv:.3e} m/s");
        assert!(
            pred.iter().all(|s| s.zeta.iter().all(|v| v.is_finite())),
            "{prec}: non-finite ζ"
        );
        assert!(
            dz <= tol,
            "{prec}: max|Δζ| {dz:.3e} exceeds documented tolerance {tol:.1e}"
        );
    }
}

#[test]
fn quantized_batch_matches_episode_path() {
    // The batched predict (the serving path) must run the same quantized
    // kernels as the single-episode path: identical scheme, identical
    // per-row activation quantization — per-episode rows are unchanged by
    // stacking, so outputs agree to f32 accumulation noise.
    let sc = Scenario::small();
    let grid = sc.grid();
    let archive = sc.simulate_archive(&grid, 0, 30);
    let mut sc2 = sc.clone();
    sc2.epochs = 2;
    let trained = train_surrogate(&sc2, &grid, &archive);
    let test = sc.simulate_archive(&grid, 1, sc.t_out + 1);
    let model = trained.spec().with_precision(Precision::Int8).instantiate();

    let single = model.predict_episode(&test);
    let batch = model.predict_batch(&[&test, &test]).expect("batch predict");
    for pred in &batch {
        let (dz, _) = max_field_diffs(&single, pred);
        assert!(
            dz <= 1e-4,
            "batched int8 forecast drifted from single-episode path: {dz:.3e}"
        );
    }
}
