//! Cross-crate integration: simulate → store → train → predict → verify.

use coastal::physics::{Verifier, VerifierConfig, ACCEPTED_THRESHOLD};
use coastal::{train_surrogate, ErrorTable, HybridForecaster, Scenario};

#[test]
fn simulate_train_predict_verify_loop() {
    let sc = Scenario::small();
    let grid = sc.grid();
    let train = sc.simulate_archive(&grid, 0, 30);
    let trained = train_surrogate(&sc, &grid, &train);
    let test = sc.simulate_archive(&grid, 1, sc.t_out + 1);

    // Forecast shape and finiteness.
    let pred = trained.predict_episode(&test);
    assert_eq!(pred.len(), sc.t_out);
    assert!(pred.iter().all(|s| s.zeta.iter().all(|v| v.is_finite())));

    // Errors are bounded by the tidal signal scale (sanity, not accuracy).
    let e = ErrorTable::between(&grid, &test[1..], &pred);
    assert!(
        e.rmse[3] < 1.0,
        "ζ RMSE must stay under the tidal range: {e:?}"
    );

    // The verifier runs and produces residuals on the prediction.
    let verifier = Verifier::new(&grid, VerifierConfig::default());
    let verdicts = verifier.check_episode(&test[0], &pred);
    assert!(!verdicts.is_empty());
    assert!(verdicts.iter().all(|v| v.mean_residual.is_finite()));
}

#[test]
fn reference_simulation_passes_oceanographic_threshold() {
    let sc = Scenario::small();
    let grid = sc.grid();
    let snaps = sc.simulate_archive(&grid, 0, 8);
    let verifier = Verifier::new(
        &grid,
        VerifierConfig {
            threshold: ACCEPTED_THRESHOLD,
        },
    );
    let residuals = verifier.residual_series(&snaps);
    let pass = coastal::physics::pass_rate(&residuals, ACCEPTED_THRESHOLD);
    assert!(
        pass > 0.99,
        "simulator output must satisfy conservation: pass rate {pass}"
    );
}

#[test]
fn hybrid_workflow_tracks_reference_better_than_unverified_ai() {
    let sc = Scenario::small();
    let grid = sc.grid();
    let train = sc.simulate_archive(&grid, 0, 30);
    let trained = train_surrogate(&sc, &grid, &train);
    let test = sc.simulate_archive(&grid, 1, 2 * sc.t_out + 2);
    let ocean = sc.ocean_config(&grid, 1);

    // Strict hybrid (all fallback) must track the reference closely —
    // the fallback is the simulator itself.
    let strict = HybridForecaster::new(
        &grid,
        &trained,
        ocean.clone(),
        VerifierConfig { threshold: 1e-12 },
    );
    let r_strict = strict.forecast(&test, 0, 2).unwrap();
    let e_strict = ErrorTable::between(&grid, &test[1..=2 * sc.t_out], &r_strict.snapshots);

    // Unverified AI (threshold ∞).
    let loose = HybridForecaster::new(&grid, &trained, ocean, VerifierConfig { threshold: 1e9 });
    let r_loose = loose.forecast(&test, 0, 2).unwrap();
    let e_loose = ErrorTable::between(&grid, &test[1..=2 * sc.t_out], &r_loose.snapshots);

    assert!(
        e_strict.rmse[3] <= e_loose.rmse[3] + 1e-9,
        "fallback-everything must be at least as accurate: {} vs {}",
        e_strict.rmse[3],
        e_loose.rmse[3]
    );
}
