//! The flagship HPC property: the MPI-style tiled simulator is
//! bit-identical to the serial one, across decompositions — plus the
//! analogous compute-backend property: the blocked/fused/parallel tensor
//! backend is numerically equivalent to the scalar reference oracle on a
//! full surrogate forward pass.

use coastal::ocean::{run_tiled, Roms};
use coastal::surrogate::{SwinConfig, SwinSurrogate};
use coastal::tensor::autograd::Graph;
use coastal::tensor::backend::BackendChoice;
use coastal::tensor::init::randn;
use coastal::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tiled_equals_serial_across_worker_counts() {
    let sc = Scenario::small();
    let grid = sc.grid();
    let cfg = sc.ocean_config(&grid, 0);
    let n = 2;
    let interval = sc.snapshot_interval;

    let mut serial = Roms::new(&grid, cfg.clone());
    let reference = serial.record(n, interval);

    for p in [2usize, 3, 4, 6] {
        let tiled = run_tiled(&grid, &cfg, p, n, interval);
        for (a, b) in reference.iter().zip(&tiled.snapshots) {
            assert_eq!(a.zeta, b.zeta, "ζ mismatch at p={p}");
            assert_eq!(a.u, b.u, "u mismatch at p={p}");
            assert_eq!(a.v, b.v, "v mismatch at p={p}");
            assert_eq!(a.w, b.w, "w mismatch at p={p}");
        }
    }
}

/// Backend parity on a whole model: the same seeded `SwinSurrogate` pinned
/// to the `Scalar` oracle and to the `Blocked` fast path produces the same
/// forecast (within f32 reassociation noise), end to end through embedding,
/// windowed attention, merges, and decoding.
#[test]
fn surrogate_forward_matches_across_backends() {
    let cfg = SwinConfig::tiny(8, 8, 4, 3);
    let seed = 42;
    let oracle = SwinSurrogate::new(cfg.clone().with_backend(BackendChoice::Scalar), seed);
    let fast = SwinSurrogate::new(cfg.clone().with_backend(BackendChoice::Blocked), seed);

    let mut rng = StdRng::seed_from_u64(7);
    let b = 2;
    let x3 = randn(&[b, 3, cfg.ny, cfg.nx, cfg.nz, cfg.t_in()], 0.5, &mut rng);
    let x2 = randn(&[b, 1, cfg.ny, cfg.nx, cfg.t_in()], 0.5, &mut rng);

    let run = |model: &SwinSurrogate| {
        let mut g = Graph::inference();
        let a = g.constant(x3.clone());
        let c = g.constant(x2.clone());
        let (o3, o2) = model.forward(&mut g, a, c);
        (g.value(o3).clone(), g.value(o2).clone())
    };
    let (r3, r2) = run(&oracle);
    let (f3, f2) = run(&fast);

    let d3 = r3.max_abs_diff(&f3);
    let d2 = r2.max_abs_diff(&f2);
    assert!(d3 < 1e-4, "3-D forecast diverges across backends: {d3}");
    assert!(d2 < 1e-4, "ζ forecast diverges across backends: {d2}");
}
