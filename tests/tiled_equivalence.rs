//! The flagship HPC property: the MPI-style tiled simulator is
//! bit-identical to the serial one, across decompositions.

use coastal::ocean::{run_tiled, Roms};
use coastal::Scenario;

#[test]
fn tiled_equals_serial_across_worker_counts() {
    let sc = Scenario::small();
    let grid = sc.grid();
    let cfg = sc.ocean_config(&grid, 0);
    let n = 2;
    let interval = sc.snapshot_interval;

    let mut serial = Roms::new(&grid, cfg.clone());
    let reference = serial.record(n, interval);

    for p in [2usize, 3, 4, 6] {
        let tiled = run_tiled(&grid, &cfg, p, n, interval);
        for (a, b) in reference.iter().zip(&tiled.snapshots) {
            assert_eq!(a.zeta, b.zeta, "ζ mismatch at p={p}");
            assert_eq!(a.u, b.u, "u mismatch at p={p}");
            assert_eq!(a.v, b.v, "v mismatch at p={p}");
            assert_eq!(a.w, b.w, "w mismatch at p={p}");
        }
    }
}
