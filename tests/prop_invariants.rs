//! Property-based invariants across crates (proptest).

use coastal::grid::SigmaCoords;
use coastal::tensor::f16::F16;
use coastal::tensor::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    /// f16 roundtrip error is within half-ULP of the 11-bit significand.
    #[test]
    fn f16_roundtrip_error_bounded(v in -60000.0f32..60000.0) {
        let r = F16::from_f32(v).to_f32();
        let tol = (v.abs() / 1024.0).max(6e-8);
        prop_assert!((r - v).abs() <= tol, "{v} -> {r}");
    }

    /// Sigma layer thicknesses always sum to the total water depth.
    #[test]
    fn sigma_thickness_partition(
        nz in 1usize..20,
        theta_s in 0.0f64..6.0,
        theta_b in 0.0f64..0.95,
        h in 0.5f64..40.0,
        zeta in -0.4f64..0.9,
    ) {
        let s = SigmaCoords::new(nz, theta_s, theta_b);
        let total: f64 = s.thicknesses(h, zeta).iter().sum();
        prop_assert!((total - (h + zeta)).abs() < 1e-9 * (1.0 + h));
        for k in 0..nz {
            prop_assert!(s.dz(k, h, zeta) > 0.0, "layer {k} must have positive thickness");
        }
    }

    /// roll is inverted by the opposite shift for any shape/shift.
    #[test]
    fn tensor_roll_inverse(
        ny in 1usize..6,
        nx in 1usize..6,
        sj in -7isize..7,
        si in -7isize..7,
    ) {
        let n = ny * nx;
        let t = Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[ny, nx]);
        let back = t.roll(&[sj, si]).roll(&[-sj, -si]);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// pad then narrow recovers the original tensor.
    #[test]
    fn tensor_pad_narrow_roundtrip(
        ny in 1usize..5,
        nx in 1usize..5,
        before in 0usize..3,
        after in 0usize..3,
    ) {
        let n = ny * nx;
        let t = Tensor::from_vec((0..n).map(|i| i as f32 * 0.5).collect(), &[ny, nx]);
        let p = t.pad(&[(before, after), (after, before)]);
        let back = p.narrow(0, before, ny).narrow(1, after, nx);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// Broadcast sum_to is the exact adjoint of broadcast_to.
    #[test]
    fn broadcast_adjoint(b in 1usize..4, n in 1usize..5) {
        let t = Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n]);
        let big = t.broadcast_to(&[b, n]);
        let back = big.sum_to(&[n]);
        for (x, y) in back.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((x - y * b as f32).abs() < 1e-5);
        }
    }
}
