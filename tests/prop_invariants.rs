//! Property-based invariants across crates (proptest).

use coastal::grid::SigmaCoords;
use coastal::tensor::autograd::Graph;
use coastal::tensor::backend::{self, Backend, Blocked, ScalarRef};
use coastal::tensor::f16::F16;
use coastal::tensor::init::randn;
use coastal::tensor::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Run `f` once under the `ScalarRef` oracle and once under `Blocked` with
/// `par_threshold = 1` (forcing the rayon/blocked code paths even on
/// test-sized tensors), returning `(reference, fast)`.
fn under_both<T>(f: impl Fn() -> T) -> (T, T) {
    let reference = {
        let _g = backend::scoped(Arc::new(ScalarRef) as Arc<dyn Backend>);
        f()
    };
    let fast = {
        let _g = backend::scoped(Arc::new(Blocked::new(1)) as Arc<dyn Backend>);
        f()
    };
    (reference, fast)
}

proptest! {
    /// f16 roundtrip error is within half-ULP of the 11-bit significand.
    #[test]
    fn f16_roundtrip_error_bounded(v in -60000.0f32..60000.0) {
        let r = F16::from_f32(v).to_f32();
        let tol = (v.abs() / 1024.0).max(6e-8);
        prop_assert!((r - v).abs() <= tol, "{v} -> {r}");
    }

    /// Sigma layer thicknesses always sum to the total water depth.
    #[test]
    fn sigma_thickness_partition(
        nz in 1usize..20,
        theta_s in 0.0f64..6.0,
        theta_b in 0.0f64..0.95,
        h in 0.5f64..40.0,
        zeta in -0.4f64..0.9,
    ) {
        let s = SigmaCoords::new(nz, theta_s, theta_b);
        let total: f64 = s.thicknesses(h, zeta).iter().sum();
        prop_assert!((total - (h + zeta)).abs() < 1e-9 * (1.0 + h));
        for k in 0..nz {
            prop_assert!(s.dz(k, h, zeta) > 0.0, "layer {k} must have positive thickness");
        }
    }

    /// roll is inverted by the opposite shift for any shape/shift.
    #[test]
    fn tensor_roll_inverse(
        ny in 1usize..6,
        nx in 1usize..6,
        sj in -7isize..7,
        si in -7isize..7,
    ) {
        let n = ny * nx;
        let t = Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[ny, nx]);
        let back = t.roll(&[sj, si]).roll(&[-sj, -si]);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// pad then narrow recovers the original tensor.
    #[test]
    fn tensor_pad_narrow_roundtrip(
        ny in 1usize..5,
        nx in 1usize..5,
        before in 0usize..3,
        after in 0usize..3,
    ) {
        let n = ny * nx;
        let t = Tensor::from_vec((0..n).map(|i| i as f32 * 0.5).collect(), &[ny, nx]);
        let p = t.pad(&[(before, after), (after, before)]);
        let back = p.narrow(0, before, ny).narrow(1, after, nx);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    /// Broadcast sum_to is the exact adjoint of broadcast_to.
    #[test]
    fn broadcast_adjoint(b in 1usize..4, n in 1usize..5) {
        let t = Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n]);
        let big = t.broadcast_to(&[b, n]);
        let back = big.sum_to(&[n]);
        for (x, y) in back.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((x - y * b as f32).abs() < 1e-5);
        }
    }

    /// Blocked matmul ≡ ScalarRef over randomized broadcast batch shapes.
    #[test]
    fn backend_parity_matmul(
        b in 1usize..4,
        m in 1usize..10,
        k in 1usize..13,
        n in 1usize..10,
        mode in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // mode selects which operand carries the batch dim (the other
        // broadcasts over it).
        let (sa, sb) = match mode {
            0 => (vec![b, m, k], vec![b, k, n]),
            1 => (vec![b, m, k], vec![k, n]),
            _ => (vec![m, k], vec![b, k, n]),
        };
        let a = randn(&sa, 1.0, &mut rng);
        let c = randn(&sb, 1.0, &mut rng);
        let (reference, fast) = under_both(|| a.matmul(&c));
        prop_assert_eq!(reference.shape(), fast.shape());
        let d = reference.max_abs_diff(&fast);
        prop_assert!(d < 1e-4, "matmul {sa:?} @ {sb:?}: max diff {d}");
    }

    /// Blocked fused-bias matmul ≡ ScalarRef.
    #[test]
    fn backend_parity_matmul_bias(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn(&[m, k], 1.0, &mut rng);
        let w = randn(&[k, n], 1.0, &mut rng);
        let bias = randn(&[n], 1.0, &mut rng);
        let (reference, fast) = under_both(|| a.matmul_bias(&w, &bias));
        let d = reference.max_abs_diff(&fast);
        prop_assert!(d < 1e-4, "matmul_bias {m}x{k}x{n}: max diff {d}");
    }

    /// Blocked row softmax ≡ ScalarRef, and rows stay normalized.
    #[test]
    fn backend_parity_softmax(
        rows in 1usize..8,
        cols in 1usize..33,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = randn(&[rows, cols], 3.0, &mut rng);
        let (reference, fast) = under_both(|| x.softmax_last());
        let d = reference.max_abs_diff(&fast);
        prop_assert!(d < 1e-4, "softmax {rows}x{cols}: max diff {d}");
        for row in fast.as_slice().chunks(cols) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row sums to {s}");
        }
    }

    /// Blocked reductions (full and per-axis) ≡ ScalarRef.
    #[test]
    fn backend_parity_reductions(
        d0 in 1usize..6,
        d1 in 1usize..6,
        d2 in 1usize..6,
        axis in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = randn(&[d0, d1, d2], 1.0, &mut rng);
        let (s_ref, s_fast) = under_both(|| x.sum_all());
        prop_assert!((s_ref - s_fast).abs() < 1e-4 * (1.0 + s_ref.abs()));
        let (a_ref, a_fast) = under_both(|| x.sum_axes_keepdims(&[axis]));
        let d = a_ref.max_abs_diff(&a_fast);
        prop_assert!(d < 1e-4, "sum over axis {axis}: max diff {d}");
        let (m_ref, m_fast) = under_both(|| x.mean_all());
        prop_assert!((m_ref - m_fast).abs() < 1e-4);
    }

    /// Blocked fused attention (inference path) ≡ ScalarRef, with and
    /// without a shifted-window additive mask.
    #[test]
    fn backend_parity_attention(
        b in 1usize..3,
        h in 1usize..3,
        n in 1usize..10,
        d in 1usize..8,
        masked in 0u8..2,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = randn(&[b, h, n, d], 1.0, &mut rng);
        let k = randn(&[b, h, n, d], 1.0, &mut rng);
        let v = randn(&[b, h, n, d], 1.0, &mut rng);
        // One window whose mask forbids a pseudo-random ~15% of pairs.
        let mask = (masked == 1).then(|| {
            let raw = randn(&[1, n, n], 1.0, &mut rng);
            Tensor::from_vec(
                raw.as_slice().iter().map(|&x| if x > 1.0 { -1e9 } else { 0.0 }).collect(),
                &[1, n, n],
            )
        });
        let run = || {
            let mut g = Graph::inference();
            let qv = g.constant(q.clone());
            let kv = g.constant(k.clone());
            let vv = g.constant(v.clone());
            let o = g.attention(qv, kv, vv, mask.as_ref(), 1.0 / (d as f32).sqrt());
            g.value(o).clone()
        };
        let (reference, fast) = under_both(run);
        let diff = reference.max_abs_diff(&fast);
        prop_assert!(diff < 1e-4, "attention b={b} h={h} n={n} d={d}: max diff {diff}");
    }

    /// Elementwise chains (unary + broadcast binary) agree across backends.
    #[test]
    fn backend_parity_elementwise(
        r in 1usize..6,
        c in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = randn(&[r, c], 1.0, &mut rng);
        let row = randn(&[c], 1.0, &mut rng);
        // `mul` with a [c] row against [r, c] exercises the strided
        // broadcast kernel, not just the equal-shape fast path.
        let (reference, fast) = under_both(|| x.gelu().mul(&row).add(&x).tanh());
        let d = reference.max_abs_diff(&fast);
        prop_assert!(d < 1e-4, "elementwise chain: max diff {d}");
    }

    /// SIMD elementwise kernels agree across backends on ragged,
    /// non-lane-multiple lengths (the vector tail is where lane kernels
    /// go wrong first), including lengths straddling the fixed parallel
    /// chunk size.
    #[test]
    fn backend_parity_ragged_tails(
        chunks in 0usize..3,
        tail in 0usize..9,
        seed in 0u64..1_000_000,
    ) {
        // 4096 is Blocked's fixed SIMD chunk; ±tail lands on every
        // remainder class mod the 8-wide lanes.
        let len = (chunks * 4096 + tail).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = randn(&[len], 2.0, &mut rng);
        let (reference, fast) = under_both(|| (x.gelu().tanh(), x.exp().sum_all()));
        let d = reference.0.max_abs_diff(&fast.0);
        prop_assert!(d < 1e-4, "len {len}: max diff {d}");
        let (sr, sf) = (reference.1, fast.1);
        prop_assert!((sr - sf).abs() < 1e-3 * (1.0 + sr.abs()), "sum {sr} vs {sf}");
    }

    /// NaN and infinity placed at an arbitrary offset propagate
    /// identically through the SIMD and scalar elementwise paths: NaN
    /// stays NaN, infinities keep their saturation semantics, and no
    /// neighboring lane element is contaminated.
    #[test]
    fn backend_parity_nonfinite_propagation(
        len in 1usize..200,
        at in 0usize..200,
        kind in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = randn(&[len], 1.5, &mut rng).as_slice().to_vec();
        let at = at % len;
        data[at] = match kind {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
        let x = Tensor::from_vec(data, &[len]);
        for (name, out) in [
            ("exp", under_both(|| x.exp())),
            ("tanh", under_both(|| x.tanh())),
            ("gelu", under_both(|| x.gelu())),
        ] {
            let (reference, fast) = out;
            for (i, (&r, &f)) in reference
                .as_slice()
                .iter()
                .zip(fast.as_slice())
                .enumerate()
            {
                if r.is_nan() {
                    prop_assert!(f.is_nan(), "{name}[{i}]: scalar NaN, simd {f}");
                } else {
                    prop_assert!(
                        (f - r).abs() <= 1e-5 * (1.0 + r.abs()) || f == r,
                        "{name}[{i}]: scalar {r}, simd {f}"
                    );
                }
            }
        }
    }
}

/// Empty and length-1 tensors survive every SIMD-dispatched op without
/// panicking, under both backends (degenerate shapes are where tail
/// handling divides by zero or slices out of bounds).
#[test]
fn backend_degenerate_shapes() {
    for len in [0usize, 1] {
        let x = Tensor::from_vec(vec![0.75; len], &[len]);
        let (r, f) = under_both(|| (x.gelu(), x.exp(), x.tanh(), x.sum_all()));
        assert_eq!(r.0.as_slice(), f.0.as_slice());
        assert_eq!(r.1.as_slice(), f.1.as_slice());
        assert_eq!(r.2.as_slice(), f.2.as_slice());
        assert!((r.3 - f.3).abs() < 1e-6);
    }
    // 1x1 matmul / softmax / attention-adjacent shapes.
    let a = Tensor::from_vec(vec![3.0], &[1, 1]);
    let b = Tensor::from_vec(vec![-2.0], &[1, 1]);
    let (r, f) = under_both(|| (a.matmul(&b), a.softmax_last()));
    assert_eq!(r.0.as_slice(), f.0.as_slice());
    assert_eq!(r.1.as_slice(), &[1.0]);
    assert_eq!(f.1.as_slice(), &[1.0]);
}

/// Parallel matmul under `Blocked` is bitwise identical at 1, 2, 4 and 8
/// rayon threads: the row partition never changes per-element
/// accumulation order (Blocked v2's determinism contract).
#[test]
fn matmul_thread_count_bitwise_invariance() {
    let mut rng = StdRng::seed_from_u64(417);
    let a = randn(&[3, 57, 43], 1.0, &mut rng);
    let b = randn(&[3, 43, 39], 1.0, &mut rng);
    let run = || {
        let _g = backend::scoped(Arc::new(Blocked::new(1)) as Arc<dyn Backend>);
        a.matmul(&b)
    };
    let mut reference: Option<Vec<u32>> = None;
    for threads in [1usize, 2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("thread pool override");
        let bits: Vec<u32> = run().as_slice().iter().map(|v| v.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(want) => assert_eq!(
                &bits, want,
                "matmul output bits changed at {threads} threads"
            ),
        }
    }
    rayon::ThreadPoolBuilder::new()
        .build_global()
        .expect("restore thread pool default");
}
