//! # coastal
//!
//! Workspace façade for the reproduction of *Accelerate Coastal Ocean
//! Circulation Model with AI Surrogate* (IPDPS 2025): re-exports the
//! public API of every crate. See `README.md` for a tour and `DESIGN.md`
//! for the system inventory.

pub use ccore as core;
pub use censemble as ensemble;
pub use cgrid as grid;
pub use chpc as hpc;
pub use cobs as obs;
pub use cocean as ocean;
pub use cphysics as physics;
pub use cpipeline as pipeline;
pub use cserve as serve;
pub use csurrogate as surrogate;
pub use ctensor as tensor;

pub use ccore::{
    train_surrogate, DualModelForecaster, ErrorTable, ForecastError, HybridForecaster, Scenario,
    SurrogateSpec, TrainedSurrogate,
};
pub use censemble::{
    EnsembleRunner, EnsembleStats, PerturbationCatalog, PerturbationSpace, SamplingStrategy,
};
pub use cserve::{ForecastRequest, ForecastServer, ServeConfig, ServeError, ServeMetrics};
