//! Telemetry demo: trace one forecast end to end and dump the metrics
//! registry.
//!
//! Trains a tiny surrogate, deploys it behind the micro-batched server
//! with tracing enabled and the kernel profiler installed, submits one
//! forecast, and prints:
//!
//! 1. the request's **span tree** — admission → queue wait → replica
//!    forward, with the named backend kernels nested under the batch
//!    forward (matmul, layernorm, qlinear, …). Parent spans carry a
//!    `(self …)` annotation: total minus the time covered by direct
//!    children, so inter-kernel time (batch assembly, dispatch, result
//!    scatter) is visible instead of vanishing into the parent total;
//! 2. the global registry as a **Prometheus** text dump, `# HELP` and
//!    `# TYPE` lines included.
//!
//! Run with:
//! `COASTAL_PROFILE=1 cargo run --release --example trace_forecast`
//! (the profiler env var is set programmatically below as well, so a
//! plain `cargo run --example trace_forecast` shows the same output).

use std::time::Duration;

use coastal::{train_surrogate, ForecastRequest, ForecastServer, Scenario, ServeConfig};

fn main() {
    // The kernel profiler reads COASTAL_PROFILE once, at first backend
    // construction — set it before anything touches a tensor so the
    // wrapped backend is the one every layer resolves.
    if std::env::var("COASTAL_PROFILE").is_err() {
        std::env::set_var("COASTAL_PROFILE", "1");
    }
    coastal::obs::trace::set_enabled(true);

    // ------------------------------------------------------------- train
    let scenario = Scenario::small();
    let grid = scenario.grid();
    println!("simulating training archive + training surrogate…");
    let archive = scenario.simulate_archive(&grid, 0, 40);
    let trained = train_surrogate(&scenario, &grid, &archive);

    // ------------------------------------------------------------ deploy
    let server = ForecastServer::new(
        trained.spec(),
        ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            cache_capacity: 16,
            ..Default::default()
        },
    );

    // ----------------------------------------------------- one forecast
    let window = archive[..scenario.t_out + 1].to_vec();
    let handle = server
        .submit(ForecastRequest::new(0, window, scenario.t_out))
        .expect("request admitted");
    let trace_id = handle.trace_id().expect("tracing is enabled");
    let forecast = handle.wait().expect("request answered");
    println!("forecast: {} steps\n", forecast.len());

    // -------------------------------------------------------- span tree
    let trace = coastal::obs::trace::lookup(trace_id).expect("trace retained");
    println!("--- span tree (trace {:#x}) ---", trace_id.0);
    print!("{}", trace.render());

    // -------------------------------------------------- registry dump
    println!("\n--- metrics registry (Prometheus exposition) ---");
    print!("{}", coastal::obs::global().snapshot().to_prometheus());
}
