//! Quickstart: simulate a small estuary, train the 4D Swin surrogate on
//! the archive, forecast one episode and verify it against mass
//! conservation — the full loop of the paper's Fig. 1 in one file.
//!
//! Run with: `cargo run --release --example quickstart`

use coastal::physics::{Verifier, VerifierConfig};
use coastal::tensor::nn::Module;
use coastal::{train_surrogate, Scenario};

fn main() {
    // 1. A scaled Charlotte-Harbor-like scenario (see DESIGN.md §1).
    let scenario = Scenario::small();
    let grid = scenario.grid();
    println!(
        "estuary mesh {}x{}x{} with {} wet cells",
        grid.ny,
        grid.nx,
        grid.sigma.nz,
        grid.wet_cells()
    );

    // 2. Simulate the "training year" with the ROMS-like solver.
    let archive = scenario.simulate_archive(&grid, 0, 40);
    println!(
        "simulated {} snapshots ({} s apart)",
        archive.len(),
        scenario.snapshot_interval
    );

    // 3. Train the surrogate (patch embedding → 4D Swin → decoder).
    let trained = train_surrogate(&scenario, &grid, &archive);
    println!(
        "trained: {} parameters, final loss {:.4}",
        trained.model.num_parameters(),
        trained.last_epoch.mean_loss
    );

    // 4. Forecast one episode of the held-out year.
    let test = scenario.simulate_archive(&grid, 1, scenario.t_out + 1);
    let forecast = trained.predict_episode(&test);
    println!("forecast {} steps", forecast.len());

    // 5. Verify mass conservation like the paper's workflow.
    let verifier = Verifier::new(&grid, VerifierConfig::default());
    let verdicts = verifier.check_episode(&test[0], &forecast);
    for (k, v) in verdicts.iter().enumerate() {
        println!(
            "step {k}: residual {:.3e} m/s → {}",
            v.mean_residual,
            if v.passed {
                "PASS"
            } else {
                "FAIL (would fall back to ROMS)"
            }
        );
    }
}
