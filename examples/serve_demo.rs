//! Forecast serving demo: train a tiny surrogate, deploy it behind the
//! micro-batched replica server, and drive it with concurrent clients —
//! including the repeat traffic (many users, one storm) where the cache
//! and single-flight coalescing shine.
//!
//! Run with: `cargo run --release --example serve_demo`

use std::sync::Arc;
use std::time::Duration;

use coastal::serve::Priority;
use coastal::{train_surrogate, ForecastRequest, ForecastServer, Scenario, ServeConfig};

fn main() {
    // ------------------------------------------------------------- train
    let scenario = Scenario::small();
    let grid = scenario.grid();
    println!("simulating training archive + training surrogate…");
    let archive = scenario.simulate_archive(&grid, 0, 40);
    let trained = train_surrogate(&scenario, &grid, &archive);

    // ------------------------------------------------------------ deploy
    let server = Arc::new(ForecastServer::new(
        trained.spec(),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            queue_capacity: 256,
            cache_capacity: 64,
            ..Default::default()
        },
    ));

    // ------------------------------------------------------------ clients
    // 4 client threads × 8 requests each, drawn from 6 distinct forecast
    // windows — so some requests repeat (cache / coalescing hits) and one
    // client sends high-priority traffic. Request windows come out of a
    // shared FP16 snapshot store, as they would from an archive service.
    let test = scenario.simulate_archive(&grid, 1, 6 + scenario.t_out + 1);
    let store = coastal::pipeline::SnapshotStore::build(&test);
    let windows: Vec<Vec<_>> = (0..6)
        .map(|i| {
            store
                .fetch_window(i, scenario.t_out + 1)
                .expect("window inside the archive")
        })
        .collect();
    let windows = Arc::new(windows);

    println!("driving 4 concurrent clients × 8 requests…");
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let server = Arc::clone(&server);
            let windows = Arc::clone(&windows);
            std::thread::spawn(move || {
                for r in 0..8 {
                    let mut req = ForecastRequest::new(
                        0,
                        windows[(c + 2 * r) % windows.len()].clone(),
                        windows[0].len() - 1,
                    );
                    if c == 0 {
                        req.priority = Priority::High;
                    }
                    let handle = server.submit(req).expect("request admitted");
                    let hit = handle.from_cache();
                    let joined = handle.coalesced();
                    let forecast = handle.wait().expect("request answered");
                    println!(
                        "client {c} request {r}: {} steps{}",
                        forecast.len(),
                        if hit {
                            " (cache hit)"
                        } else if joined {
                            " (coalesced)"
                        } else {
                            ""
                        }
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // ------------------------------------------------------------ report
    let m = server.metrics();
    println!("\n--- serving metrics ---");
    println!("completed            {}", m.completed);
    println!("throughput           {:.1} req/s", m.throughput_rps);
    println!(
        "latency p50/p95/p99  {:.1} / {:.1} / {:.1} ms",
        m.p50_ms, m.p95_ms, m.p99_ms
    );
    println!(
        "cache                {} hits / {} misses ({:.0}% hit rate)",
        m.cache_hits,
        m.cache_misses,
        m.cache_hit_rate * 100.0
    );
    println!("coalesced in-flight  {}", m.coalesced);
    println!("batch histogram      {:?}", m.batch_histogram);
}
