//! Tidal forecasting scenario: compare the surrogate's multi-episode
//! forecast against the reference simulation (paper Figs. 5/6 workload),
//! reporting per-variable MAE/RMSE and probe-point time series.
//!
//! Run with: `cargo run --release --example tidal_forecast`

use coastal::{train_surrogate, ErrorTable, Scenario};

fn main() {
    let scenario = Scenario::small();
    let grid = scenario.grid();
    let train = scenario.simulate_archive(&grid, 0, 50);
    let trained = train_surrogate(&scenario, &grid, &train);

    // Held-out year, three chained episodes.
    let test = scenario.simulate_archive(&grid, 1, 3 * (scenario.t_out + 1));
    let mut reference = Vec::new();
    let mut predicted = Vec::new();
    for w in test.chunks_exact(scenario.t_out + 1) {
        predicted.extend(trained.predict_episode(w));
        reference.extend(w[1..].iter().cloned());
    }
    let e = ErrorTable::between(&grid, &reference, &predicted);
    println!("{}", e.row("forecast"));

    // Probe a deep channel cell like the paper's Fig. 6 locations.
    let (mut pj, mut pi) = (grid.ny / 2, grid.nx / 2);
    'f: for j in 2..grid.ny - 2 {
        for i in 2..grid.nx - 2 {
            if grid.h.get(j as isize, i as isize) > 5.0 {
                pj = j;
                pi = i;
                break 'f;
            }
        }
    }
    println!("\nζ at probe ({pj},{pi}) [ROMS vs AI]:");
    for (t, (r, p)) in reference.iter().zip(&predicted).enumerate() {
        println!(
            "  t={t:<3} {:+.3}  {:+.3}",
            r.zeta_at(pj, pi),
            p.zeta_at(pj, pi)
        );
    }
}
