//! The hybrid AI+ROMS workflow (paper Fig. 1): verified surrogate
//! forecasts with automatic fallback to the simulator, at two
//! verification thresholds to show the speed/strictness trade-off
//! (paper Fig. 8).
//!
//! Run with: `cargo run --release --example hybrid_workflow`

use coastal::physics::VerifierConfig;
use coastal::{train_surrogate, HybridForecaster, Scenario};

fn main() {
    let scenario = Scenario::small();
    let grid = scenario.grid();
    let train = scenario.simulate_archive(&grid, 0, 40);
    let trained = train_surrogate(&scenario, &grid, &train);
    let test = scenario.simulate_archive(&grid, 1, 3 * scenario.t_out + 2);
    let ocean = scenario.ocean_config(&grid, 1);

    for (label, threshold) in [("strict", 1e-9), ("loose", 1e-1)] {
        let fc =
            HybridForecaster::new(&grid, &trained, ocean.clone(), VerifierConfig { threshold });
        let r = fc.forecast(&test, 0, 3).expect("reference long enough");
        println!(
            "{label:>7} threshold {threshold:.0e}: {} AI episodes, {} fallbacks, \
             AI {:.2}s + ROMS {:.2}s + verify {:.2}s = {:.2}s total",
            r.episodes_ai,
            r.episodes_fallback,
            r.ai_seconds,
            r.roms_seconds,
            r.verify_seconds,
            r.total_seconds()
        );
    }
}
