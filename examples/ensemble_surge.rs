//! Probabilistic storm-surge forecasting with the ensemble engine: a
//! seeded 16-member surge ensemble over one trained surrogate, producing
//! an exceedance-probability map (`P[peak ζ > threshold]`), per-member
//! physics verdicts, quantile envelopes and member skill ranking.
//!
//! Deterministic end to end: rerunning prints the identical map.
//!
//! Run with: `cargo run --release --example ensemble_surge`

use coastal::core::train_surrogate;
use coastal::ensemble::{
    rank_members, synthesize_windows, EnsembleRunner, EnsembleStats, PerturbationCatalog,
    PerturbationSpace, RunnerConfig, SamplingStrategy,
};
use coastal::physics::VerifierConfig;
use coastal::Scenario;

fn main() {
    // ------------------------------------------------------------- train
    let sc = Scenario::small();
    let grid = sc.grid();
    println!("simulating training archive + training surrogate…");
    let archive = sc.simulate_archive(&grid, 0, 40);
    let trained = train_surrogate(&sc, &grid, &archive);

    // --------------------------------------------------- define ensemble
    // A 16-member Latin-hypercube surge study: tidal amplitude/phase
    // uncertainty, weather-anomaly scaling, river stage, IC noise, and a
    // storm-surge pulse family (0.2–0.8 m, 3–9 h, variable landfall).
    let catalog = PerturbationCatalog::new(
        PerturbationSpace::surge_study(),
        SamplingStrategy::LatinHypercube { members: 16 },
        42,
    );
    let members = catalog.members();
    println!("\n{} members drawn (seed {}):", members.len(), catalog.seed);
    for m in members.iter().take(4) {
        println!("  {}", m.label());
    }
    println!("  …");

    // ------------------------------------------------- forecast ensemble
    // One simulated base episode (test-year forcing) is shared by every
    // member; member windows are synthesized analytically and forecast in
    // stacked predict_batch chunks, each verified against mass
    // conservation with ROMS fallback.
    let test = sc.simulate_archive(&grid, 1, sc.t_out + 1);
    let windows = synthesize_windows(&sc, &grid, &test, 1, &members).expect("valid perturbations");
    let outcome = EnsembleRunner::new(
        &grid,
        &trained,
        &sc,
        1,
        RunnerConfig {
            chunk: 8,
            verifier: Some(VerifierConfig::default()),
            fallback: true,
            threads: 1,
        },
    )
    .run(&windows)
    .expect("ensemble run");
    println!(
        "\nforecast {} members in {} stacked batch(es): {} AI, {} fallback, pass rate {:.0}%",
        outcome.members.len(),
        outcome.batches,
        outcome.ai_members(),
        outcome.fallback_members(),
        outcome.pass_rate() * 100.0
    );

    // ---------------------------------------------------- surge products
    let stats = EnsembleStats::compute(&outcome, &EnsembleStats::DEFAULT_PROBS);

    // Adaptive flood threshold: halfway between the ensemble-median and
    // ensemble-max peak surge over wet cells.
    let wet: Vec<usize> = (0..grid.ny * grid.nx)
        .filter(|&c| {
            grid.mask_rho
                .get((c / grid.nx) as isize, (c % grid.nx) as isize)
                > 0.5
        })
        .collect();
    let med = percentile_over(&stats.peak_zeta.quantiles[1], &wet, 0.5);
    let peak = percentile_over(&stats.peak_zeta.max, &wet, 1.0);
    let threshold = (0.5 * (med + peak)) as f32;
    let exceed = stats.exceedance(threshold);

    println!(
        "\nexceedance-probability map  P[peak ζ > {threshold:.2} m]  ({}×{}, west = open ocean):",
        grid.ny, grid.nx
    );
    println!("  █ p>0.8  ▓ p>0.5  ▒ p>0.2  · p>0  (space: dry/safe, ~ land)");
    for j in (0..grid.ny).step_by(2) {
        let mut row = String::from("  ");
        for i in 0..grid.nx {
            let c = j * grid.nx + i;
            let ch = if grid.mask_rho.get(j as isize, i as isize) < 0.5 {
                '~'
            } else if exceed[c] > 0.8 {
                '█'
            } else if exceed[c] > 0.5 {
                '▓'
            } else if exceed[c] > 0.2 {
                '▒'
            } else if exceed[c] > 0.0 {
                '·'
            } else {
                ' '
            };
            row.push(ch);
        }
        println!("{row}");
    }

    // Quantile envelope at the most uncertain wet cell (max spread) —
    // where the ensemble adds the most information over a single run.
    let c_max = wet
        .iter()
        .copied()
        .max_by(|&a, &b| stats.peak_zeta.std[a].total_cmp(&stats.peak_zeta.std[b]))
        .expect("wet cell");
    println!(
        "\npeak ζ at most uncertain cell ({},{}):  q10 {:+.3} m  q50 {:+.3} m  q90 {:+.3} m  \
         (spread ±{:.3} m, P[> {threshold:.2} m] = {:.0}%)",
        c_max / grid.nx,
        c_max % grid.nx,
        stats.peak_zeta.quantiles[0][c_max],
        stats.peak_zeta.quantiles[1][c_max],
        stats.peak_zeta.quantiles[2][c_max],
        stats.peak_zeta.std[c_max],
        exceed[c_max] * 100.0
    );

    // ------------------------------------------------- verdicts + skill
    println!("\nper-member physics verdicts and skill vs the unperturbed run:");
    let reference = &test[1..=sc.t_out];
    let ranks = rank_members(&grid, reference, &outcome);
    for r in &ranks {
        let m = &outcome.members[r.member_id];
        let worst = m
            .verdicts
            .iter()
            .map(|v| v.mean_residual)
            .fold(0.0f64, f64::max);
        println!(
            "  {}  {}  worst residual {worst:.2e} m/s  ζ-RMSE {:.3} m  {}",
            members[r.member_id].label(),
            if m.passed { "PASS" } else { "FAIL→ROMS" },
            r.score,
            if r.member_id == ranks[0].member_id {
                "← closest to base"
            } else {
                ""
            }
        );
    }
}

/// Percentile of `field` restricted to the `cells` subset.
fn percentile_over(field: &[f32], cells: &[usize], p: f64) -> f64 {
    let mut vals: Vec<f32> = cells.iter().map(|&c| field[c]).collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    let idx = ((vals.len() - 1) as f64 * p).round() as usize;
    vals[idx] as f64
}
