//! MPI-style strong scaling of the ROMS-like simulator (the paper's
//! Table I baseline): tiled runs at 1..8 workers with communication
//! statistics, verifying tiled == serial bit-for-bit.
//!
//! Run with: `cargo run --release --example scaling_demo`

use coastal::ocean::{run_tiled, Roms};
use coastal::Scenario;

fn main() {
    let scenario = Scenario::small();
    let grid = scenario.grid();
    let cfg = scenario.ocean_config(&grid, 0);
    let n_snaps = scenario.t_out;
    let interval = scenario.snapshot_interval;

    let mut serial = Roms::new(&grid, cfg.clone());
    let t0 = std::time::Instant::now();
    let reference = serial.record(n_snaps, interval);
    println!("serial: {:.3}s", t0.elapsed().as_secs_f64());

    for p in [1usize, 2, 4, 8] {
        let run = run_tiled(&grid, &cfg, p, n_snaps, interval);
        let sent: usize = run.stats.iter().map(|s| s.doubles_sent).sum();
        let identical = reference
            .iter()
            .zip(&run.snapshots)
            .all(|(a, b)| a.zeta == b.zeta && a.u == b.u && a.v == b.v);
        println!(
            "tiled p={p}: {:.3}s, {:.1} MB halo traffic, bitwise == serial: {identical}",
            run.wall_seconds,
            sent as f64 * 8.0 / 1e6
        );
        assert!(identical, "tiled runs must match serial exactly");
    }
}
